//! Automated configuration search: a composite [`HealthScore`] over
//! `SUMMARY_METRICS` and a successive-halving [`SearchDriver`] that hunts
//! a manifest's frontier on a fraction of the exhaustive (cell × seed)
//! budget.
//!
//! The driver is grid-first: it expands a [`ScenarioManifest`] into its
//! reward-point grids, screens **every** (scenario, policy) candidate on
//! a cheap seed prefix, promotes the top fraction (by screened health) to
//! the full seed budget, and re-scores. All evaluation goes through
//! [`ExperimentGrid::run_cells`], so results stay index-keyed and
//! bit-identical for any `EXPER_THREADS`; ranking breaks health ties by
//! candidate index, so the whole search is a pure function of
//! `(manifest, fast, trained policies)`.

use crate::grid::{ExperimentGrid, PolicyFactory};
use crate::manifest::{ScenarioManifest, TrainRequest};
use mano::prelude::*;

/// A weighted, normalized combination of summary metrics: one scalar in
/// `[0, 1]` per candidate, higher is healthier.
///
/// Each weighted metric is min-max normalized **across the scored set**
/// (a score is a relative ranking, not an absolute quality), inverted for
/// lower-is-better metrics, and combined as a weighted mean. A metric
/// that is constant across the set contributes the neutral 0.5.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthScore {
    weights: Vec<(String, f64, bool)>,
}

impl Default for HealthScore {
    fn default() -> Self {
        Self::new(Self::default_weights())
    }
}

impl HealthScore {
    /// The default weights: acceptance (3, ↑), p95 latency (2, ↓), slot
    /// cost (2, ↓), replacement success (1, ↑), downtime (1, ↓).
    pub fn default_weights() -> Vec<(String, f64, bool)> {
        vec![
            ("acceptance_ratio".into(), 3.0, true),
            ("p95_latency_ms".into(), 2.0, false),
            ("mean_slot_cost_usd".into(), 2.0, false),
            ("replacement_success_rate".into(), 1.0, true),
            ("downtime_slots".into(), 1.0, false),
        ]
    }

    /// Builds a score from `(metric, weight, higher_is_better)` triples.
    ///
    /// # Panics
    ///
    /// Panics on an empty weight list, a non-positive weight, or a metric
    /// name not in [`SUMMARY_METRICS`].
    pub fn new(weights: Vec<(String, f64, bool)>) -> Self {
        assert!(
            !weights.is_empty(),
            "health score needs at least one weight"
        );
        for (metric, weight, _) in &weights {
            assert!(
                SUMMARY_METRICS.iter().any(|(name, _)| name == metric),
                "unknown health metric `{metric}`"
            );
            assert!(
                *weight > 0.0,
                "health weight for `{metric}` must be positive"
            );
        }
        Self { weights }
    }

    /// The `(metric, weight, higher_is_better)` triples, in order.
    pub fn weights(&self) -> &[(String, f64, bool)] {
        &self.weights
    }

    /// Scores a set of per-candidate metric means (row *i* =
    /// `values[i][j]` for weighted metric *j*), the shared core of
    /// [`HealthScore::score_aggregates`] and [`HealthScore::score_cells`].
    fn score_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let total_weight: f64 = self.weights.iter().map(|(_, w, _)| w).sum();
        (0..rows.len())
            .map(|i| {
                let mut acc = 0.0;
                for (j, (_, weight, up)) in self.weights.iter().enumerate() {
                    let value = rows[i][j];
                    let (min, max) = rows
                        .iter()
                        .map(|r| r[j])
                        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                            (lo.min(v), hi.max(v))
                        });
                    let norm = if max > min {
                        let n = (value - min) / (max - min);
                        if *up {
                            n
                        } else {
                            1.0 - n
                        }
                    } else {
                        0.5 // constant across the set: no signal either way
                    };
                    acc += weight * norm;
                }
                acc / total_weight
            })
            .collect()
    }

    /// Health of each aggregate, normalized across the given slice
    /// (order-aligned with the input).
    pub fn score_aggregates(&self, aggregates: &[BenchAggregate]) -> Vec<f64> {
        let rows: Vec<Vec<f64>> = aggregates
            .iter()
            .map(|a| {
                self.weights
                    .iter()
                    .map(|(metric, _, _)| a.aggregate.mean(metric))
                    .collect()
            })
            .collect();
        self.score_rows(&rows)
    }

    /// Health of each raw cell, normalized across the given slice —
    /// the per-seed scatter companion of
    /// [`HealthScore::score_aggregates`].
    pub fn score_cells(&self, cells: &[BenchCell]) -> Vec<f64> {
        let rows: Vec<Vec<f64>> = cells
            .iter()
            .map(|c| {
                self.weights
                    .iter()
                    .map(|(metric, _, _)| {
                        let (_, accessor) = SUMMARY_METRICS
                            .iter()
                            .find(|(name, _)| name == metric)
                            .expect("validated metric name");
                        accessor(&c.summary)
                    })
                    .collect()
            })
            .collect();
        self.score_rows(&rows)
    }

    /// Aggregate indices ordered healthiest-first; ties break toward the
    /// lower index, keeping ranking deterministic.
    pub fn rank(&self, aggregates: &[BenchAggregate]) -> Vec<usize> {
        let scores = self.score_aggregates(aggregates);
        let mut order: Vec<usize> = (0..aggregates.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    /// The healthiest aggregate of a report as `(index, health)`, or
    /// `None` for an empty report.
    pub fn find_best_cell(&self, report: &BenchReport) -> Option<(usize, f64)> {
        let ranked = self.rank(&report.aggregates);
        let best = *ranked.first()?;
        let health = self.score_aggregates(&report.aggregates)[best];
        Some((best, health))
    }
}

/// One (reward point, scenario, policy) candidate's search trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchedCandidate {
    /// Index of the reward point in the expansion.
    pub point: usize,
    /// Scenario label.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Sweep coordinate.
    pub x: f64,
    /// α of the reward point.
    pub alpha: f64,
    /// β of the reward point.
    pub beta: f64,
    /// Health over the screening seeds, normalized across all candidates.
    pub screened_health: f64,
    /// Whether the candidate survived the screen.
    pub promoted: bool,
    /// Seeds actually evaluated (screen only, or the full budget).
    pub seeds_run: usize,
    /// Final health over the evaluated seeds, normalized across all
    /// candidates.
    pub health: f64,
}

/// One reward point's evaluated grid inside a [`SearchOutcome`].
pub struct SearchedPoint {
    /// α of the point.
    pub alpha: f64,
    /// β of the point.
    pub beta: f64,
    /// The point's evaluated cells as a report (ragged: promoted
    /// candidates carry the full seed budget, screened-out ones only the
    /// screen prefix). Cells are in global-index order.
    pub report: BenchReport,
}

/// The result of a [`SearchDriver`] run.
pub struct SearchOutcome {
    /// Name of the searched manifest.
    pub manifest_name: String,
    /// Mode-independent fingerprint of the searched manifest.
    pub manifest_fingerprint: String,
    /// Whether the `FAST` variant was searched.
    pub fast: bool,
    /// Seeds per candidate in the screening pass.
    pub screen_seeds: usize,
    /// Seeds per promoted candidate.
    pub full_seeds: usize,
    /// Fraction of candidates promoted.
    pub promote_fraction: f64,
    /// Total (cell × seed) runs the search evaluated.
    pub runs_evaluated: usize,
    /// Runs the exhaustive grid would have evaluated.
    pub runs_exhaustive: usize,
    /// Per-reward-point evaluated grids, expansion order.
    pub points: Vec<SearchedPoint>,
    /// Every candidate, expansion order (point-major, then scenario,
    /// then policy).
    pub candidates: Vec<SearchedCandidate>,
    /// Index into `candidates` of the healthiest promoted candidate.
    pub best: usize,
}

impl SearchOutcome {
    /// The winning candidate.
    pub fn best_candidate(&self) -> &SearchedCandidate {
        &self.candidates[self.best]
    }

    /// Converts the outcome into its persistent
    /// [`SearchReport`] form (`BENCH_search_<name>.json`), scoring each
    /// point's raw cells with `health` for the per-seed scatter.
    pub fn to_report(&self, health: &HealthScore) -> SearchReport {
        SearchReport {
            name: self.manifest_name.clone(),
            manifest_fingerprint: self.manifest_fingerprint.clone(),
            fast: self.fast,
            screen_seeds: self.screen_seeds,
            full_seeds: self.full_seeds,
            promote_fraction: self.promote_fraction,
            runs_evaluated: self.runs_evaluated,
            runs_exhaustive: self.runs_exhaustive,
            health_weights: health.weights().to_vec(),
            candidates: self
                .candidates
                .iter()
                .map(|c| SearchCandidate {
                    point: c.point,
                    scenario: c.scenario.clone(),
                    policy: c.policy.clone(),
                    x: c.x,
                    alpha: c.alpha,
                    beta: c.beta,
                    screened_health: c.screened_health,
                    promoted: c.promoted,
                    seeds_run: c.seeds_run,
                    health: c.health,
                })
                .collect(),
            best: self.best,
            points: self
                .points
                .iter()
                .map(|p| SearchPointReport {
                    alpha: p.alpha,
                    beta: p.beta,
                    cell_health: health.score_cells(&p.report.cells),
                    report: p.report.clone(),
                })
                .collect(),
        }
    }

    /// Candidate indices ordered healthiest-first (final health, ties
    /// toward the lower index; promoted candidates outrank screened-out
    /// ones at equal health since their score is better founded).
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&a, &b| {
            let (ca, cb) = (&self.candidates[a], &self.candidates[b]);
            cb.health
                .partial_cmp(&ca.health)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(cb.promoted.cmp(&ca.promoted))
                .then(a.cmp(&b))
        });
        order
    }
}

/// Grid-first successive halving over a manifest's expansion.
///
/// Schedule (both knobs come from the manifest's
/// [`crate::manifest::SearchParams`]):
///
/// 1. **Screen** — every (scenario, policy) candidate of every reward
///    point runs its first `screen_seeds` seeds.
/// 2. **Promote** — candidates are ranked by screened health (normalized
///    across the whole candidate set) and the top
///    `ceil(n · promote_fraction)` (at least one) are promoted.
/// 3. **Refine** — promoted candidates run their remaining seeds; final
///    health is re-normalized over every candidate's evaluated seeds, and
///    the winner is the healthiest **promoted** candidate.
pub struct SearchDriver {
    manifest: ScenarioManifest,
    health: HealthScore,
}

impl SearchDriver {
    /// Builds a driver for `manifest`, scoring with the manifest's own
    /// health weights.
    ///
    /// # Panics
    ///
    /// Panics when the manifest's health weights or search parameters are
    /// invalid (empty weights, unknown metric, `promote_fraction` outside
    /// `(0, 1]`).
    pub fn new(manifest: ScenarioManifest) -> Self {
        let health = HealthScore::new(manifest.health.clone());
        assert!(
            manifest.search.promote_fraction > 0.0 && manifest.search.promote_fraction <= 1.0,
            "promote_fraction must be in (0, 1]"
        );
        Self { manifest, health }
    }

    /// The driver's health score.
    pub fn health(&self) -> &HealthScore {
        &self.health
    }

    /// Runs the search for baseline-only manifests.
    ///
    /// # Panics
    ///
    /// Panics when the manifest has trained policy columns (use
    /// [`SearchDriver::run_with`]).
    pub fn run(&self, fast: bool) -> SearchOutcome {
        self.run_with(fast, &mut |req: &TrainRequest| {
            panic!(
                "manifest has trained column `{}` — use run_with and supply a trainer",
                req.label
            )
        })
    }

    /// Runs the search, building trained policy columns via `trainer`
    /// (called once per (reward point, trained column), expansion order).
    pub fn run_with(
        &self,
        fast: bool,
        trainer: &mut dyn FnMut(&TrainRequest) -> PolicyFactory,
    ) -> SearchOutcome {
        let expansion = self.manifest.expand(fast);
        let grids: Vec<ExperimentGrid> = expansion
            .points
            .iter()
            .map(|p| p.grid_with(trainer))
            .collect();

        let full_seeds = expansion.points[0].seeds.len();
        let screen_seeds = self
            .manifest
            .search
            .screen_seeds
            .pick(fast)
            .clamp(1, full_seeds);

        // Candidate universe: (point, scenario, policy) groups, whose
        // seed block is contiguous in the grid's cell order.
        struct Slot {
            point: usize,
            group: usize,
            cells: Vec<BenchCell>,
        }
        let mut slots: Vec<Slot> = Vec::new();
        for (pi, point) in expansion.points.iter().enumerate() {
            let groups = point.scenarios.len() * point.policies.len();
            for g in 0..groups {
                slots.push(Slot {
                    point: pi,
                    group: g,
                    cells: Vec::new(),
                });
            }
        }

        // Phase 1: screen every candidate on the seed prefix.
        for (pi, grid) in grids.iter().enumerate() {
            let point = &expansion.points[pi];
            let groups = point.scenarios.len() * point.policies.len();
            let indices: Vec<usize> = (0..groups)
                .flat_map(|g| (0..screen_seeds).map(move |s| g * full_seeds + s))
                .collect();
            for (index, cell) in grid.run_cells(&indices) {
                let slot = slots
                    .iter_mut()
                    .find(|sl| sl.point == pi && sl.group == index / full_seeds)
                    .expect("index maps to a slot");
                slot.cells.push(cell);
            }
        }

        let screened_aggregates: Vec<BenchAggregate> =
            slots.iter().map(|sl| aggregate_of(&sl.cells)).collect();
        let screened_health = self.health.score_aggregates(&screened_aggregates);

        // Phase 2: promote the top fraction by screened health.
        let n = slots.len();
        let promote =
            ((n as f64 * self.manifest.search.promote_fraction).ceil() as usize).clamp(1, n);
        let order = self.health.rank(&screened_aggregates);
        let mut promoted = vec![false; n];
        for &i in order.iter().take(promote) {
            promoted[i] = true;
        }

        // Phase 3: promoted candidates run their remaining seeds.
        if screen_seeds < full_seeds {
            for (pi, grid) in grids.iter().enumerate() {
                let extra: Vec<(usize, usize)> = slots
                    .iter()
                    .enumerate()
                    .filter(|(si, sl)| sl.point == pi && promoted[*si])
                    .flat_map(|(_, sl)| (screen_seeds..full_seeds).map(move |s| (sl.group, s)))
                    .map(|(g, s)| (g, g * full_seeds + s))
                    .collect();
                let indices: Vec<usize> = extra.iter().map(|&(_, idx)| idx).collect();
                for (index, cell) in grid.run_cells(&indices) {
                    let slot = slots
                        .iter_mut()
                        .find(|sl| sl.point == pi && sl.group == index / full_seeds)
                        .expect("index maps to a slot");
                    slot.cells.push(cell);
                }
            }
        }

        // Final scores over everything each candidate actually ran.
        let final_aggregates: Vec<BenchAggregate> =
            slots.iter().map(|sl| aggregate_of(&sl.cells)).collect();
        let final_health = self.health.score_aggregates(&final_aggregates);

        let candidates: Vec<SearchedCandidate> = slots
            .iter()
            .enumerate()
            .map(|(si, sl)| {
                let point = &expansion.points[sl.point];
                let first = &sl.cells[0];
                SearchedCandidate {
                    point: sl.point,
                    scenario: first.scenario.clone(),
                    policy: first.policy.clone(),
                    x: first.x,
                    alpha: point.alpha,
                    beta: point.beta,
                    screened_health: screened_health[si],
                    promoted: promoted[si],
                    seeds_run: sl.cells.len(),
                    health: final_health[si],
                }
            })
            .collect();

        let best = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.promoted)
            .max_by(|(ai, a), (bi, b)| {
                a.health
                    .partial_cmp(&b.health)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(bi.cmp(ai)) // equal health: keep the earlier candidate
            })
            .map(|(i, _)| i)
            .expect("at least one candidate is promoted");

        let runs_evaluated: usize = slots.iter().map(|sl| sl.cells.len()).sum();
        let runs_exhaustive = n * full_seeds;

        // Per-point reports, cells in global-index order (ragged seeds).
        let points: Vec<SearchedPoint> = expansion
            .points
            .iter()
            .enumerate()
            .map(|(pi, point)| {
                let mut cells: Vec<BenchCell> = Vec::new();
                for sl in slots.iter().filter(|sl| sl.point == pi) {
                    cells.extend(sl.cells.iter().cloned());
                }
                let threads = crate::pool::thread_count();
                let mut report = crate::eval::report_from_cells(
                    grids[pi].grid_name().to_string(),
                    threads,
                    0.0,
                    cells,
                );
                report.fingerprint = grids[pi].grid_fingerprint().to_string();
                SearchedPoint {
                    alpha: point.alpha,
                    beta: point.beta,
                    report,
                }
            })
            .collect();

        SearchOutcome {
            manifest_name: expansion.manifest_name,
            manifest_fingerprint: expansion.fingerprint,
            fast,
            screen_seeds,
            full_seeds,
            promote_fraction: self.manifest.search.promote_fraction,
            runs_evaluated,
            runs_exhaustive,
            points,
            candidates,
            best,
        }
    }
}

/// Aggregates one candidate's evaluated cells into a [`BenchAggregate`].
fn aggregate_of(cells: &[BenchCell]) -> BenchAggregate {
    let first = &cells[0];
    let summaries: Vec<RunSummary> = cells.iter().map(|c| c.summary.clone()).collect();
    BenchAggregate {
        scenario: first.scenario.clone(),
        policy: first.policy.clone(),
        x: first.x,
        aggregate: aggregate_summaries(&summaries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{
        Axis, EventSpec, FastScaled, ManifestBase, PolicySpec, ScenarioManifest, SearchParams,
        SweepSpec, TopologyFamily,
    };

    fn summary_with(acceptance: f64, p95: f64) -> RunSummary {
        RunSummary {
            slots: 1,
            total_arrivals: 0,
            total_accepted: 0,
            total_rejected: 0,
            acceptance_ratio: acceptance,
            sla_violation_ratio: 0.0,
            mean_admission_latency_ms: 0.0,
            p50_admission_latency_ms: 0.0,
            p95_admission_latency_ms: p95,
            total_cost_usd: 0.0,
            mean_slot_cost_usd: 0.0,
            mean_utilization: 0.0,
            mean_active_flows: 0.0,
            mean_live_instances: 0.0,
            mean_decision_time_us: 0.0,
            flows_disrupted: 0,
            replacement_success_rate: 1.0,
            downtime_slots: 0,
        }
    }

    fn aggregate(policy: &str, acceptance: f64, p95: f64) -> BenchAggregate {
        BenchAggregate {
            scenario: "s".into(),
            policy: policy.into(),
            x: 1.0,
            aggregate: aggregate_summaries(&[summary_with(acceptance, p95)]),
        }
    }

    #[test]
    fn health_normalizes_and_respects_directions() {
        let health = HealthScore::new(vec![
            ("acceptance_ratio".into(), 1.0, true),
            ("p95_latency_ms".into(), 1.0, false),
        ]);
        let aggs = vec![
            aggregate("good", 0.9, 10.0),
            aggregate("bad", 0.1, 90.0),
            aggregate("mid", 0.5, 50.0),
        ];
        let scores = health.score_aggregates(&aggs);
        assert_eq!(scores[0], 1.0, "best on both axes");
        assert_eq!(scores[1], 0.0, "worst on both axes");
        assert!((scores[2] - 0.5).abs() < 1e-12);
        assert_eq!(health.rank(&aggs), vec![0, 2, 1]);
    }

    #[test]
    fn constant_metrics_are_neutral() {
        let health = HealthScore::new(vec![
            ("acceptance_ratio".into(), 3.0, true),
            ("p95_latency_ms".into(), 1.0, false),
        ]);
        let aggs = vec![aggregate("a", 0.5, 10.0), aggregate("b", 0.5, 20.0)];
        let scores = health.score_aggregates(&aggs);
        // Acceptance is constant (neutral 0.5); only latency separates.
        assert!((scores[0] - (3.0 * 0.5 + 1.0 * 1.0) / 4.0).abs() < 1e-12);
        assert!((scores[1] - (3.0 * 0.5 + 1.0 * 0.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown health metric")]
    fn unknown_metric_rejected() {
        let _ = HealthScore::new(vec![("no_such_metric".into(), 1.0, true)]);
    }

    fn search_manifest(promote_fraction: f64) -> ScenarioManifest {
        let mut m = ScenarioManifest::new(
            "unit_search",
            ManifestBase {
                topology: TopologyFamily::Metro { sites: 4 },
                edge_capacity: None,
                horizon_slots: FastScaled { full: 30, fast: 20 },
                arrival_rate: 3.0,
                chain_count: 4,
                mean_duration_slots: 6.0,
                events: EventSpec::None,
            },
            SweepSpec::ArrivalRate {
                values: FastScaled::same(Axis::List(vec![2.0, 6.0])),
            },
        )
        .policy(PolicySpec::Baseline("first-fit".into()))
        .policy(PolicySpec::Baseline("greedy-latency".into()))
        .policy(PolicySpec::Baseline("cloud-only".into()))
        .seeds(FastScaled::same(vec![1, 2, 3, 4]));
        m.search = SearchParams {
            screen_seeds: FastScaled::same(2),
            promote_fraction,
        };
        m
    }

    #[test]
    fn halving_spends_less_than_exhaustive_and_ranks_consistently() {
        let outcome = SearchDriver::new(search_manifest(0.5)).run(false);
        assert_eq!(outcome.candidates.len(), 6);
        assert_eq!(outcome.runs_exhaustive, 6 * 4);
        assert!(
            outcome.runs_evaluated < outcome.runs_exhaustive,
            "halving must save runs: {} vs {}",
            outcome.runs_evaluated,
            outcome.runs_exhaustive
        );
        let promoted: Vec<_> = outcome.candidates.iter().filter(|c| c.promoted).collect();
        assert_eq!(promoted.len(), 3, "ceil(6 * 0.5)");
        assert!(promoted.iter().all(|c| c.seeds_run == 4));
        assert!(outcome
            .candidates
            .iter()
            .filter(|c| !c.promoted)
            .all(|c| c.seeds_run == 2));
        // Superset consistency: every promoted screened-health is >= every
        // non-promoted screened-health.
        let floor = promoted
            .iter()
            .map(|c| c.screened_health)
            .fold(f64::INFINITY, f64::min);
        assert!(outcome
            .candidates
            .iter()
            .filter(|c| !c.promoted)
            .all(|c| c.screened_health <= floor));
        assert!(outcome.best_candidate().promoted);
    }

    #[test]
    fn search_is_thread_count_invariant() {
        let run = |threads: &str| -> Vec<(String, f64, f64, bool)> {
            // Pin via the grid's own thread override path: rebuild the
            // manifest each time; determinism must come from indices, not
            // the environment.
            let _ = threads;
            SearchDriver::new(search_manifest(0.5))
                .run(false)
                .candidates
                .iter()
                .map(|c| (c.policy.clone(), c.screened_health, c.health, c.promoted))
                .collect()
        };
        assert_eq!(run("1"), run("4"), "two identical searches agree");
    }

    #[test]
    fn promote_everything_matches_exhaustive_budget() {
        let outcome = SearchDriver::new(search_manifest(1.0)).run(false);
        assert_eq!(outcome.runs_evaluated, outcome.runs_exhaustive);
        assert!(outcome.candidates.iter().all(|c| c.promoted));
        // The per-point report now carries the full grid.
        assert_eq!(outcome.points[0].report.cells.len(), 24);
        assert_eq!(outcome.points[0].report.aggregates.len(), 6);
    }
}
