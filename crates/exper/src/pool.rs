//! A std-only fork-join pool for embarrassingly parallel experiment
//! cells: no networked crates, just scoped threads pulling indices off a
//! shared atomic counter (self-balancing — a worker that finishes a cheap
//! cell immediately steals the next unclaimed one).
//!
//! Swap-out path: when crates.io access exists, `run_indexed` is exactly
//! `rayon`'s `(0..n).into_par_iter().map(job).collect()` with a pool
//! sized by [`thread_count`]; nothing else in the engine would change.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "EXPER_THREADS";

/// Worker threads to use: `EXPER_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
///
/// Precedence, highest first:
///
/// 1. An explicit `ExperimentGrid::threads(n)` — the grid never calls
///    this function at all (tests pin thread counts without touching the
///    process environment).
/// 2. `EXPER_THREADS` (this function) — set per process. The sweep driver
///    relies on this layer: it exports `EXPER_THREADS = max(1, budget /
///    workers)` into every worker process it spawns so that N concurrent
///    workers share the machine's cores instead of each claiming all of
///    them (N × cores oversubscription).
/// 3. `std::thread::available_parallelism()`, the fallback.
pub fn thread_count() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("[exper] ignoring invalid {THREADS_ENV}={v:?}");
                default_thread_count()
            }
        },
        Err(_) => default_thread_count(),
    }
}

fn default_thread_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the shared poison flag if its worker unwinds, so sibling workers
/// stop claiming new indices instead of running the rest of the grid.
struct PanicGuard<'a>(&'a AtomicBool);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs `job(0..n)` on `threads` workers and returns the results in index
/// order. The output is a pure function of `job` — identical for any
/// `threads` value — because every result is routed back to its index's
/// slot, never to an arrival-order position.
///
/// # Panics
///
/// If a cell panics, the remaining workers stop claiming new cells and
/// this function panics once they drain (the worker's own panic message
/// reaches stderr via the panic hook first).
pub fn run_indexed<R, F>(n: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_with(n, threads, || (), |(), index| job(index))
}

/// [`run_indexed`] with worker-local state: every worker thread builds
/// one `init()` value and threads it mutably through all the cells it
/// claims. The fan-out primitive for jobs that carry warm reusable
/// buffers — a greedy evaluation fleet clones its policy (and therefore
/// its inference `Workspace`) once per *worker*, not once per cell.
///
/// Determinism contract: `job` must produce the same result for an index
/// regardless of which cells the worker's state served before (reusable
/// buffers, not behavioral state). Under that contract the output is
/// identical for any `threads` value, index-keyed exactly like
/// [`run_indexed`].
///
/// # Panics
///
/// Same poisoning behavior as [`run_indexed`]: one panicking cell stops
/// the fleet and re-panics after the workers drain.
pub fn run_indexed_with<S, R, I, F>(n: usize, threads: usize, init: I, job: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if n == 0 {
        return Vec::new();
    }
    // The sequential path runs the identical job closure in index order;
    // keeping it free of thread plumbing makes `EXPER_THREADS=1` the
    // obvious reference run for determinism checks.
    if threads == 1 || n == 1 {
        let mut state = init();
        return (0..n).map(|i| job(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let poisoned = &poisoned;
            let init = &init;
            let job = &job;
            scope.spawn(move || {
                let _guard = PanicGuard(poisoned);
                let mut state = init();
                loop {
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    // A send can only fail if the receiver was dropped,
                    // which cannot happen while this scope is alive.
                    tx.send((index, job(&mut state, index)))
                        .expect("receiver alive");
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (index, result) in rx {
            slots[index] = Some(result);
        }
        // The channel closes only after every worker exited, so the flag
        // is final here.
        assert!(
            !poisoned.load(Ordering::Relaxed),
            "a grid cell panicked; see the worker's panic message above"
        );
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} produced no result")))
            .collect()
    })
}

/// Parallel map over a slice with engine-default thread selection:
/// `job(index, &items[index])` for every element, results in input order.
/// The generic fan-out used by training-heavy experiment phases where the
/// unit of work is not a (scenario, policy, seed) cell.
pub fn parallel_map<T, R, F>(items: &[T], job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed(items.len(), thread_count(), |i| job(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let seq = run_indexed(64, 1, |i| (i, i as u64 * 3));
        let par = run_indexed(64, 8, |i| (i, i as u64 * 3));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        assert_eq!(run_indexed(2, 32, |i| i), vec![0, 1]);
    }

    #[test]
    fn worker_state_is_warm_scratch_not_behavior() {
        // The state is a reusable buffer: the job's result is a pure
        // function of the index, so any thread count agrees.
        let job = |buf: &mut Vec<usize>, i: usize| {
            buf.clear(); // warm reuse across the worker's cells
            buf.extend(0..=i);
            buf.iter().sum::<usize>()
        };
        let seq = run_indexed_with(23, 1, Vec::new, job);
        let par = run_indexed_with(23, 8, Vec::new, job);
        assert_eq!(seq, par);
        assert_eq!(seq[3], 6);
    }

    #[test]
    fn parallel_map_passes_items() {
        let items = ["a", "bb", "ccc"];
        let out = parallel_map(&items, |i, s| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = run_indexed(1, 0, |i| i);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(8, 4, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
