//! Property tests for the manifest layer's determinism contract: an
//! arbitrary manifest expands to byte-identical grids every time (and
//! after a JSON round-trip), `Random` axes are pure functions of their
//! seed, and successive halving promotes a superset-consistent top
//! fraction of the screened ranking.

use exper::prelude::*;
use proptest::prelude::*;

/// Arbitrary sweep-value axis from a `(kind, list, steps, seed)` draw.
/// `List` values are deduplicated small integers so labels stay
/// readable; `Random` bounds are fixed and the seed spans `u64` (the
/// property under test is that the seed alone determines the draws).
fn axis_strategy() -> impl Strategy<Value = Axis> {
    (
        0u8..4,
        proptest::collection::vec(1u32..12, 1..4),
        1usize..4,
        0u64..u64::MAX,
    )
        .prop_map(|(kind, list, steps, seed)| {
            let start = f64::from(list[0]);
            match kind {
                0 => {
                    let mut values: Vec<f64> = Vec::new();
                    for x in list {
                        if !values.contains(&f64::from(x)) {
                            values.push(f64::from(x));
                        }
                    }
                    Axis::List(values)
                }
                1 => Axis::LinRange {
                    start,
                    end: start + 4.0,
                    steps,
                },
                2 => Axis::LogRange {
                    start,
                    end: start * 4.0,
                    steps,
                },
                _ => Axis::Random {
                    lo: 1.0,
                    hi: 9.0,
                    n: steps,
                    seed,
                },
            }
        })
}

/// Arbitrary scenario sweep over all four sweep families.
fn sweep_strategy() -> impl Strategy<Value = SweepSpec> {
    (
        0u8..4,
        axis_strategy(),
        proptest::collection::vec(3u64..7, 1..3),
        1u64..4,
    )
        .prop_map(|(kind, axis, mut sites, max_len)| match kind {
            0 => SweepSpec::ArrivalRate {
                values: FastScaled::same(axis),
            },
            1 => {
                sites.sort_unstable();
                sites.dedup();
                SweepSpec::Sites {
                    values: FastScaled::same(Axis::List(
                        sites.into_iter().map(|s| s as f64).collect(),
                    )),
                }
            }
            2 => SweepSpec::ChainLength {
                max: FastScaled::same(max_len),
            },
            _ => SweepSpec::FailureRate {
                values: FastScaled::same(axis),
                mean_downtime_slots: 3.0,
            },
        })
}

/// Arbitrary baseline-only manifest: random sweep, reward lattice
/// (paired diagonal or full cross of one axis with itself), policy
/// subset (`mask` picks a non-empty subset of four baselines) and seed
/// list. Never trained columns — these manifests are expanded and
/// searched inside the properties.
fn manifest_strategy() -> impl Strategy<Value = ScenarioManifest> {
    (
        sweep_strategy(),
        axis_strategy(),
        1u8..16,
        proptest::collection::vec(100u64..140, 1..4),
        proptest::bool::ANY,
    )
        .prop_map(|(sweep, reward_axis, mask, mut seeds, paired)| {
            seeds.sort_unstable();
            seeds.dedup();
            let mut base = ManifestBase::bench(4.0);
            base.topology = TopologyFamily::Metro { sites: 4 };
            base.edge_capacity = None;
            base.horizon_slots = FastScaled { full: 16, fast: 16 };
            let mut manifest = ScenarioManifest::new("prop_manifest", base, sweep);
            // Zipping the axis with itself keeps the paired lattice's
            // equal-length requirement satisfied by construction.
            manifest = manifest.reward(RewardAxes {
                alpha: reward_axis.clone(),
                beta: reward_axis,
                paired,
            });
            let pool = ["first-fit", "greedy-latency", "greedy-cost", "cloud-only"];
            for (i, name) in pool.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    manifest = manifest.policy(PolicySpec::Baseline((*name).into()));
                }
            }
            manifest.seeds(FastScaled::same(seeds))
        })
}

/// Rendering of everything an expansion pins: per-point weights, grid
/// name, scenario rows (label, x, full scenario), policy labels, seeds
/// and catalogs. Byte-equal signatures mean byte-equal grids.
fn expansion_signature(expansion: &Expansion) -> String {
    let mut out = format!("{}|{}\n", expansion.fingerprint, expansion.fast);
    for point in &expansion.points {
        out.push_str(&format!(
            "{}|{}|{}|{:?}|{:?}|{:?}|{:?}\n",
            point.grid_name,
            point.alpha,
            point.beta,
            point.reward,
            point.policies,
            point.seeds,
            point.catalogs,
        ));
        for row in &point.scenarios {
            out.push_str(&format!("  {}|{}|{:?}\n", row.label, row.x, row.scenario));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same manifest value always expands to the same grids: equal
    /// expansion signatures and equal `ExperimentGrid` fingerprints, in
    /// both modes.
    #[test]
    fn expansion_is_deterministic(manifest in manifest_strategy()) {
        for fast in [false, true] {
            let a = manifest.expand(fast);
            let b = manifest.expand(fast);
            prop_assert_eq!(expansion_signature(&a), expansion_signature(&b));
            let fps_a: Vec<String> =
                a.points.iter().map(|p| p.grid().grid_fingerprint().to_string()).collect();
            let fps_b: Vec<String> =
                b.points.iter().map(|p| p.grid().grid_fingerprint().to_string()).collect();
            prop_assert_eq!(fps_a, fps_b);
        }
    }

    /// Serializing to JSON and parsing back yields the same manifest —
    /// same value, same mode-independent fingerprint, same expansion.
    #[test]
    fn json_roundtrip_preserves_the_manifest(manifest in manifest_strategy()) {
        let text = serde_json::to_string_pretty(&manifest.to_json());
        let back = ScenarioManifest::parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &manifest);
        prop_assert_eq!(back.fingerprint(), manifest.fingerprint());
        prop_assert_eq!(
            expansion_signature(&back.expand(true)),
            expansion_signature(&manifest.expand(true))
        );
    }

    /// A `Random` axis is a pure function of its fields: repeated
    /// expansion gives identical draws, every draw is in `[lo, hi)`, and
    /// the draw count is `n`.
    #[test]
    fn random_axis_depends_only_on_its_seed(
        seed in 0u64..u64::MAX,
        n in 1usize..8,
        lo in 0u32..5,
        span in 1u32..6,
    ) {
        let (lo, hi) = (f64::from(lo), f64::from(lo) + f64::from(span));
        let axis = Axis::Random { lo, hi, n, seed };
        let first = axis.values();
        prop_assert_eq!(first.len(), n);
        prop_assert!(first.iter().all(|v| (lo..hi).contains(v)));
        prop_assert_eq!(axis.values(), first.clone());
        // The seed is the only randomness source: an equal-seed axis
        // built independently agrees draw for draw.
        let twin = Axis::Random { lo, hi, n, seed };
        prop_assert_eq!(twin.values(), first);
    }
}

proptest! {
    // Each case runs real (tiny) simulations twice; keep the case count
    // low so the suite stays in test-pyramid territory.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Successive halving promotes exactly the ceil(n·fraction) top
    /// screened candidates (superset-consistent: every promoted
    /// candidate screens at least as healthy as every screened-out one),
    /// spends `n·screen + promoted·(full−screen)` runs, crowns a
    /// promoted winner, and serializes byte-identically across runs.
    #[test]
    fn halving_promotes_the_top_screened_fraction(
        promote_fraction in 0.05f64..=1.0,
        screen in 1usize..4,
        seed_count in 1usize..4,
        mut rates in proptest::collection::vec(1u32..8, 1..3),
    ) {
        rates.sort_unstable();
        rates.dedup();
        let rates: Vec<f64> = rates.into_iter().map(f64::from).collect();
        let mut base = ManifestBase::bench(4.0);
        base.topology = TopologyFamily::Metro { sites: 4 };
        base.edge_capacity = None;
        base.horizon_slots = FastScaled { full: 16, fast: 16 };
        let mut manifest = ScenarioManifest::new(
            "prop_halving",
            base,
            SweepSpec::ArrivalRate { values: FastScaled::same(Axis::List(rates)) },
        )
        .policy(PolicySpec::Baseline("first-fit".into()))
        .policy(PolicySpec::Baseline("cloud-only".into()))
        .seeds(FastScaled::same((0..seed_count).map(|i| 101 + i as u64).collect()));
        manifest.search = SearchParams {
            screen_seeds: FastScaled::same(screen),
            promote_fraction,
        };

        let driver = SearchDriver::new(manifest);
        let outcome = driver.run(true);

        let n = outcome.candidates.len();
        let screen = screen.clamp(1, seed_count);
        let expected_promoted = ((n as f64 * promote_fraction).ceil() as usize).clamp(1, n);
        let promoted: Vec<&SearchedCandidate> =
            outcome.candidates.iter().filter(|c| c.promoted).collect();
        prop_assert_eq!(promoted.len(), expected_promoted);

        // Superset consistency: no screened-out candidate outranks a
        // promoted one on the screening score both were ranked by.
        let floor = promoted
            .iter()
            .map(|c| c.screened_health)
            .fold(f64::INFINITY, f64::min);
        for c in outcome.candidates.iter().filter(|c| !c.promoted) {
            prop_assert!(c.screened_health <= floor);
            prop_assert_eq!(c.seeds_run, screen);
        }
        for c in &promoted {
            prop_assert_eq!(c.seeds_run, seed_count);
        }
        prop_assert!(outcome.best_candidate().promoted);
        prop_assert_eq!(
            outcome.runs_evaluated,
            n * screen + expected_promoted * (seed_count - screen)
        );
        prop_assert!(outcome.runs_evaluated <= outcome.runs_exhaustive);

        // Byte-determinism of the full on-disk document.
        let again = driver.run(true);
        prop_assert_eq!(
            serde_json::to_string_pretty(&outcome.to_report(driver.health()).canonical_json()),
            serde_json::to_string_pretty(&again.to_report(driver.health()).canonical_json())
        );
    }
}
