//! Engine determinism: a parallel grid run must be bit-identical to the
//! sequential reference run — same cells, same aggregates, same serialized
//! JSON payload — because reduction is keyed by grid index, never by
//! completion order.

use exper::prelude::*;
use mano::prelude::*;

/// The 2-scenario × 3-policy × 4-seed grid from the engine's acceptance
/// criteria, pinned to an explicit thread count.
fn reference_grid(threads: usize) -> BenchReport {
    let low = Scenario::small_test().with_arrival_rate(2.0);
    let high = Scenario::small_test().with_arrival_rate(6.0);
    ExperimentGrid::new("determinism")
        .scenario("low-load", 2.0, low)
        .scenario("high-load", 6.0, high)
        .policy("first-fit", || Box::new(FirstFitPolicy))
        .policy("greedy-latency", || Box::new(GreedyLatencyPolicy))
        .policy("weighted-greedy", || {
            Box::new(WeightedGreedyPolicy::default())
        })
        .seeds(&[11, 12, 13, 14])
        .threads(threads)
        .run()
}

#[test]
fn parallel_grid_is_bit_identical_to_sequential() {
    let sequential = reference_grid(1);
    let parallel = reference_grid(8);

    assert_eq!(sequential.cells.len(), 2 * 3 * 4);
    // Cell-level: every summary field, every coordinate.
    assert_eq!(sequential.cells, parallel.cells);
    // Aggregate-level: mean/std/ci95 of every metric of every group.
    assert_eq!(sequential.aggregates, parallel.aggregates);
    // Byte-level: the serialized deterministic payload is what CI diffs,
    // so compare the exact strings that would land on disk.
    assert_eq!(
        serde_json::to_string_pretty(&sequential.payload_json()),
        serde_json::to_string_pretty(&parallel.payload_json()),
    );
    // The band CSVs derived from the aggregates must match byte for byte.
    assert_eq!(sweep_csv(&sequential), sweep_csv(&parallel));
    assert_eq!(cells_csv(&sequential), cells_csv(&parallel));
}

#[test]
fn thread_count_is_recorded_but_outside_the_payload() {
    let parallel = reference_grid(8);
    assert_eq!(parallel.threads, 8);
    let payload = serde_json::to_string(&parallel.payload_json());
    assert!(
        !payload.contains("wall_clock"),
        "payload must not leak timing"
    );
}

#[test]
fn parallel_eval_is_thread_count_invariant_with_warm_worker_clones() {
    // parallel_eval clones the frozen policy once per WORKER, so a
    // worker's inference workspaces stay warm across the cells it serves.
    // Warm buffers must be reusable scratch, not behavioral state: any
    // thread count (and any cell-to-worker assignment) has to produce
    // bit-identical cells.
    let scenario = Scenario::small_test();
    let mut agent_rng = rand::SeedableRng::seed_from_u64(17);
    let probe = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = DrlPolicy::new(
        DrlManagerConfig::default(),
        probe.encoder.dim(),
        probe.action_space.len(),
        &mut agent_rng,
    );
    drop(probe);
    policy.set_training(false);

    let mut cells = cells_for_seeds(
        "lambda=2",
        2.0,
        &scenario.with_arrival_rate(2.0),
        &[1, 2, 3],
    );
    cells.extend(cells_for_seeds(
        "lambda=5",
        5.0,
        &scenario.with_arrival_rate(5.0),
        &[1, 2, 3],
    ));

    let sequential = parallel_eval(
        &policy,
        "drl",
        RewardConfig::default(),
        &cells,
        Some(1),
        false,
    );
    let parallel = parallel_eval(
        &policy,
        "drl",
        RewardConfig::default(),
        &cells,
        Some(8),
        false,
    );
    assert_eq!(sequential.len(), 6);
    assert_eq!(sequential, parallel);

    // And the packaged report merges like any grid report.
    let report = report_from_cells("eval_fanout", 8, 1.0, parallel);
    assert_eq!(report.aggregates.len(), 2);
    assert!(report.aggregates.iter().all(|a| a.aggregate.runs == 3));
}

#[test]
fn stateful_policy_cells_stay_independent() {
    // A learning policy cloned per cell must give the same result as the
    // same policy evaluated directly: no cross-cell state bleed.
    let scenario = Scenario::small_test();
    let mut agent_rng = rand::SeedableRng::seed_from_u64(9);
    let probe = Simulation::new(&scenario, RewardConfig::default());
    let trained = DrlPolicy::new(
        DrlManagerConfig::default(),
        probe.encoder.dim(),
        probe.action_space.len(),
        &mut agent_rng,
    );
    drop(probe);

    let factory_policy = trained.clone();
    let report = ExperimentGrid::new("stateful")
        .scenario("small", 1.0, scenario.clone())
        .policy_boxed("drl", Box::new(move || Box::new(factory_policy.clone())))
        .seeds(&[5, 6])
        .threads(4)
        .run();

    for (cell, seed) in report.cells.iter().zip([5u64, 6]) {
        let mut fresh = trained.clone();
        let mut direct = evaluate_policy(&scenario, RewardConfig::default(), &mut fresh, seed);
        direct.summary.mean_decision_time_us = 0.0;
        assert_eq!(cell.summary, direct.summary, "seed {seed} diverged");
    }
}
