//! Property tests for the edgenet substrate: routing optimality and
//! capacity-ledger invariants.

use edgenet::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn waxman_topologies_always_connected(n in 2usize..30, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TopologyBuilder { with_cloud: seed % 2 == 0, ..Default::default() }
            .waxman(n, 400.0, 0.7, 0.3, &mut rng);
        prop_assert!(topo.is_connected());
    }

    #[test]
    fn shortest_path_beats_every_two_hop_detour(n in 4usize..12, seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TopologyBuilder { with_cloud: false, ..Default::default() }
            .waxman(n, 300.0, 0.8, 0.4, &mut rng);
        let table = RoutingTable::build(&topo);
        for s in 0..n {
            for d in 0..n {
                let direct = table.latency_ms(NodeId(s), NodeId(d));
                for via in 0..n {
                    let detour = table.latency_ms(NodeId(s), NodeId(via))
                        + table.latency_ms(NodeId(via), NodeId(d));
                    prop_assert!(direct <= detour + 1e-9);
                }
            }
        }
    }

    #[test]
    fn path_reconstruction_matches_latency(n in 4usize..15, seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TopologyBuilder { with_cloud: false, ..Default::default() }
            .waxman(n, 300.0, 0.6, 0.3, &mut rng);
        let table = RoutingTable::build(&topo);
        for s in 0..n {
            for d in 0..n {
                let p = table.path(NodeId(s), NodeId(d)).expect("connected");
                // Recompute from links.
                let mut sum = 0.0;
                for w in p.nodes.windows(2) {
                    let li = topo.neighbours(w[0]).iter().find(|&&(nb, _)| nb == w[1])
                        .map(|&(_, li)| li).expect("adjacent");
                    sum += topo.link(li).latency_ms;
                }
                prop_assert!((p.latency_ms - sum).abs() < 1e-9);
                prop_assert_eq!(*p.nodes.first().unwrap(), NodeId(s));
                prop_assert_eq!(*p.nodes.last().unwrap(), NodeId(d));
            }
        }
    }

    #[test]
    fn ledger_alloc_free_round_trip(
        ops in proptest::collection::vec((0usize..4, 0.0f64..4.0, 0.0f64..8.0), 1..40)
    ) {
        let mut ledger = CapacityLedger::from_capacities(vec![
            Resources::new(16.0, 32.0); 4
        ]);
        let baseline = ledger.clone();
        let mut applied = Vec::new();
        for (node, cpu, mem) in ops {
            let demand = Resources::new(cpu, mem);
            if ledger.allocate(NodeId(node), &demand).is_ok() {
                applied.push((node, demand));
            }
            // Invariant: utilization never exceeds 1.
            for i in 0..4 {
                prop_assert!(ledger.utilization_of(NodeId(i)).unwrap() <= 1.0 + 1e-9);
            }
        }
        // Free everything in reverse; the ledger must return to baseline
        // modulo floating-point accumulation.
        for (node, demand) in applied.into_iter().rev() {
            ledger.release(NodeId(node), &demand).unwrap();
        }
        for i in 0..4 {
            let used = ledger.used_of(NodeId(i)).unwrap();
            prop_assert!(used.cpu.abs() < 1e-6 && used.mem.abs() < 1e-6);
        }
        let _ = baseline;
    }

    #[test]
    fn event_sequences_keep_routes_equal_to_fresh_rebuild(
        n in 4usize..12,
        seed in 0u64..5_000,
        ops in proptest::collection::vec((0u8..4, 0usize..12, 0usize..12), 1..24),
    ) {
        // Any fail → recover → degrade sequence must leave the view's
        // incrementally maintained routes latency-identical to a
        // from-scratch build over the same degraded network.
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TopologyBuilder { with_cloud: seed % 2 == 0, ..Default::default() }
            .waxman(n, 400.0, 0.7, 0.3, &mut rng);
        let total = topo.node_count();
        let links = topo.links().to_vec();
        let mut view = NetworkView::new(topo);
        let mut version = view.version();
        for (kind, i, j) in ops {
            let node = NodeId(i % total);
            let event = match kind {
                0 => NetworkEvent::NodeDown { node },
                1 => NetworkEvent::NodeUp { node },
                2 => {
                    let link = &links[i % links.len()];
                    // Alternate stretches and shrinks, including repeats
                    // of the same factor (no-op path).
                    let factor = [0.5, 1.0, 3.0, 8.0][j % 4];
                    NetworkEvent::LinkLatencyShift { a: link.a, b: link.b, factor }
                }
                _ => NetworkEvent::CapacityDegrade {
                    node,
                    factor: [0.25, 0.5, 1.0][j % 3],
                },
            };
            let changed = view.apply(&event);
            let fresh = view.rebuild_routes();
            for s in 0..total {
                for d in 0..total {
                    let inc = view.routes().latency_ms(NodeId(s), NodeId(d));
                    let full = fresh.latency_ms(NodeId(s), NodeId(d));
                    prop_assert!(
                        inc == full || (inc.is_infinite() && full.is_infinite()),
                        "after {event:?}: route {s}->{d} incremental {inc} vs rebuild {full}"
                    );
                }
            }
            // Version bumps exactly on state changes.
            let expected = if changed { version + 1 } else { version };
            prop_assert_eq!(view.version(), expected);
            version = expected;
        }
    }

    #[test]
    fn haversine_triangle_inequality(
        (lat1, lon1) in (-80.0f64..80.0, -170.0f64..170.0),
        (lat2, lon2) in (-80.0f64..80.0, -170.0f64..170.0),
        (lat3, lon3) in (-80.0f64..80.0, -170.0f64..170.0),
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
    }
}
