//! Geographic coordinates and propagation-delay estimation.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal propagation speed in fibre, km per millisecond (≈ 2/3 c).
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Multiplier accounting for fibre paths not following great circles.
pub const ROUTE_CIRCUITY: f64 = 1.6;

/// A point on the Earth's surface (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if latitude or longitude are out of range or non-finite.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            lat.is_finite() && (-90.0..=90.0).contains(&lat),
            "latitude {lat} out of range"
        );
        assert!(
            lon.is_finite() && (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// One-way propagation delay to `other` in milliseconds, assuming fibre
    /// with typical route circuity.
    pub fn propagation_delay_ms(&self, other: &GeoPoint) -> f64 {
        self.distance_km(other) * ROUTE_CIRCUITY / FIBRE_KM_PER_MS
    }
}

/// Well-known metro locations used by the topology presets.
///
/// Returns `(name, point)` pairs; order is stable.
pub fn metro_catalog() -> Vec<(&'static str, GeoPoint)> {
    vec![
        ("new-york", GeoPoint::new(40.7128, -74.0060)),
        ("chicago", GeoPoint::new(41.8781, -87.6298)),
        ("dallas", GeoPoint::new(32.7767, -96.7970)),
        ("los-angeles", GeoPoint::new(34.0522, -118.2437)),
        ("seattle", GeoPoint::new(47.6062, -122.3321)),
        ("miami", GeoPoint::new(25.7617, -80.1918)),
        ("denver", GeoPoint::new(39.7392, -104.9903)),
        ("atlanta", GeoPoint::new(33.7490, -84.3880)),
        ("london", GeoPoint::new(51.5074, -0.1278)),
        ("frankfurt", GeoPoint::new(50.1109, 8.6821)),
        ("paris", GeoPoint::new(48.8566, 2.3522)),
        ("amsterdam", GeoPoint::new(52.3676, 4.9041)),
        ("tokyo", GeoPoint::new(35.6762, 139.6503)),
        ("singapore", GeoPoint::new(1.3521, 103.8198)),
        ("sydney", GeoPoint::new(-33.8688, 151.2093)),
        ("sao-paulo", GeoPoint::new(-23.5505, -46.6333)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(40.0, -74.0);
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(40.7128, -74.0060);
        let b = GeoPoint::new(51.5074, -0.1278);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn nyc_to_london_roughly_5570km() {
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let london = GeoPoint::new(51.5074, -0.1278);
        let d = nyc.distance_km(&london);
        assert!((d - 5570.0).abs() < 60.0, "distance {d}");
    }

    #[test]
    fn propagation_delay_scales_with_distance() {
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let chi = GeoPoint::new(41.8781, -87.6298);
        let london = GeoPoint::new(51.5074, -0.1278);
        assert!(nyc.propagation_delay_ms(&chi) < nyc.propagation_delay_ms(&london));
        // NYC→London ≈ 5570 km * 1.6 / 200 ≈ 44.6 ms one-way.
        let d = nyc.propagation_delay_ms(&london);
        assert!((d - 44.6).abs() < 2.0, "delay {d}");
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn metro_catalog_is_nonempty_and_unique() {
        let cat = metro_catalog();
        assert!(cat.len() >= 10);
        let names: std::collections::HashSet<_> = cat.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn invalid_latitude_panics() {
        let _ = GeoPoint::new(100.0, 0.0);
    }
}
