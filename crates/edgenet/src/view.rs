//! A versioned, mutable view of the network: topology + routes + capacity
//! behind one API, kept consistent under dynamic [`NetworkEvent`]s.
//!
//! The simulation engine used to hold `Topology`, `RoutingTable` and
//! `CapacityLedger` as three loose, frozen fields. [`NetworkView`] owns
//! all three and is the only place allowed to mutate them, so every
//! consumer observes the same degraded network: dead nodes vanish from
//! the routes, degraded links stretch every path crossing them, and
//! shrunken nodes stop admitting new instances.
//!
//! Routes are maintained *incrementally*: an event recomputes only the
//! single-source Dijkstra trees it can actually have changed (the trees
//! that used a failed node or a shifted link, or that a revived node
//! could improve) and patches the rest in O(1) per source. A property
//! test asserts the result is latency-identical to a from-scratch
//! [`RoutingTable::build_filtered`] after any event sequence.

use crate::capacity::CapacityLedger;
use crate::node::{NodeId, NodeKind, Resources};
use crate::routing::{dijkstra_filtered, RoutingTable};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A dynamic change to the network, applied between slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetworkEvent {
    /// The node fails: it stops hosting instances and routing traffic.
    NodeDown {
        /// The failing node.
        node: NodeId,
    },
    /// The node recovers at full (baseline) capacity.
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
    /// The link between `a` and `b` shifts to `factor ×` its *base*
    /// latency (congestion when `> 1`, an upgrade when `< 1`). Factors do
    /// not compound: a later shift replaces the earlier one.
    LinkLatencyShift {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Multiplier on the link's base latency, `> 0`.
        factor: f64,
    },
    /// The node's capacity shrinks to `factor ×` its baseline (partial
    /// hardware failure). Running instances keep their allocations; the
    /// node just stops fitting new ones until usage drains or the node
    /// recovers.
    CapacityDegrade {
        /// The degraded node.
        node: NodeId,
        /// Multiplier on baseline capacity, in `(0, 1]`.
        factor: f64,
    },
}

impl NetworkEvent {
    /// The node this event takes down, if it is a failure.
    pub fn downed_node(&self) -> Option<NodeId> {
        match *self {
            NetworkEvent::NodeDown { node } => Some(node),
            _ => None,
        }
    }
}

/// Aggregate degradation signals for policy observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkHealth {
    /// Fraction of all nodes currently alive, in `[0, 1]`.
    pub live_node_fraction: f64,
    /// Fraction of baseline *edge* CPU capacity currently unavailable
    /// (down nodes count in full, degraded nodes partially), in `[0, 1]`.
    pub capacity_loss_fraction: f64,
}

impl NetworkHealth {
    /// A fully healthy network: every node up at baseline capacity.
    pub fn healthy() -> Self {
        Self {
            live_node_fraction: 1.0,
            capacity_loss_fraction: 0.0,
        }
    }
}

/// Topology + routing table + capacity ledger behind one mutable API.
#[derive(Debug, Clone)]
pub struct NetworkView {
    topology: Topology,
    routes: RoutingTable,
    ledger: CapacityLedger,
    alive: Vec<bool>,
    /// Per-link latency multiplier relative to base latency.
    link_factor: Vec<f64>,
    /// Per-node capacity multiplier relative to baseline capacity.
    capacity_factor: Vec<f64>,
    /// Baseline (as-built) capacity per node.
    base_capacity: Vec<Resources>,
    version: u64,
}

impl NetworkView {
    /// Wraps a topology into a fully healthy view: routes built fresh,
    /// ledger empty, every node alive at baseline capacity.
    pub fn new(topology: Topology) -> Self {
        let routes = RoutingTable::build(&topology);
        let ledger = CapacityLedger::for_topology(&topology);
        let base_capacity: Vec<Resources> = topology.nodes().iter().map(|n| n.capacity).collect();
        let alive = vec![true; topology.node_count()];
        let link_factor = vec![1.0; topology.link_count()];
        let capacity_factor = vec![1.0; topology.node_count()];
        Self {
            topology,
            routes,
            ledger,
            alive,
            link_factor,
            capacity_factor,
            base_capacity,
            version: 0,
        }
    }

    /// The underlying topology (immutable; liveness is tracked here, not
    /// by removing nodes).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current routes over the live part of the network. Entries touching
    /// a dead node are `INFINITY`.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// The capacity ledger.
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (allocations/releases only — capacity
    /// itself is event-driven through [`NetworkView::apply`]).
    pub fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }

    /// `true` if `node` is currently alive.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.alive[node.0]
    }

    /// Number of currently dead nodes.
    pub fn down_node_count(&self) -> usize {
        self.alive.iter().filter(|&&a| !a).count()
    }

    /// Monotonically increasing counter, bumped once per state-changing
    /// event (consumers use it to invalidate caches keyed on the network).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Effective latency of link `li` (base × current shift factor).
    pub fn link_latency_ms(&self, li: usize) -> f64 {
        self.topology.link(li).latency_ms * self.link_factor[li]
    }

    /// Aggregate health signals for policy observations.
    pub fn health(&self) -> NetworkHealth {
        let n = self.topology.node_count();
        let live = self.alive.iter().filter(|&&a| a).count();
        let mut base_edge_cpu = 0.0;
        let mut live_edge_cpu = 0.0;
        for node in self.topology.nodes() {
            if node.kind != NodeKind::Edge {
                continue;
            }
            base_edge_cpu += self.base_capacity[node.id.0].cpu;
            if self.alive[node.id.0] {
                live_edge_cpu +=
                    self.base_capacity[node.id.0].cpu * self.capacity_factor[node.id.0];
            }
        }
        NetworkHealth {
            live_node_fraction: live as f64 / n as f64,
            capacity_loss_fraction: if base_edge_cpu > 0.0 {
                (1.0 - live_edge_cpu / base_edge_cpu).clamp(0.0, 1.0)
            } else {
                0.0
            },
        }
    }

    fn effective_capacity(&self, node: NodeId) -> Resources {
        let base = self.base_capacity[node.0];
        let f = self.capacity_factor[node.0];
        Resources::new(base.cpu * f, base.mem * f)
    }

    /// A from-scratch routing table for the current degraded network —
    /// the reference the incremental maintenance must match exactly.
    pub fn rebuild_routes(&self) -> RoutingTable {
        RoutingTable::build_filtered(&self.topology, &self.alive, &|li| self.link_latency_ms(li))
    }

    fn recompute_row(&mut self, s: NodeId) {
        let row = dijkstra_filtered(&self.topology, s, &self.alive, &|li| {
            self.topology.link(li).latency_ms * self.link_factor[li]
        });
        self.routes.set_row(s, row);
    }

    /// Applies one event; returns `true` if it changed any state (a
    /// `NodeDown` on an already-dead node is a no-op, etc.).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node ids, a `LinkLatencyShift` naming a
    /// non-existent link, or a non-positive factor.
    pub fn apply(&mut self, event: &NetworkEvent) -> bool {
        let n = self.topology.node_count();
        let changed = match *event {
            NetworkEvent::NodeDown { node } => {
                assert!(node.0 < n, "event node {node} out of range");
                if !self.alive[node.0] {
                    false
                } else {
                    self.alive[node.0] = false;
                    self.routes_after_node_down(node);
                    true
                }
            }
            NetworkEvent::NodeUp { node } => {
                assert!(node.0 < n, "event node {node} out of range");
                if self.alive[node.0] {
                    false
                } else {
                    self.alive[node.0] = true;
                    // Recovered hardware rejoins at full baseline capacity.
                    self.capacity_factor[node.0] = 1.0;
                    self.ledger
                        .set_capacity(node, self.base_capacity[node.0])
                        .expect("ledger covers topology");
                    self.routes_after_node_up(node);
                    true
                }
            }
            NetworkEvent::LinkLatencyShift { a, b, factor } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "latency factor must be positive, got {factor}"
                );
                let li = self
                    .topology
                    .links()
                    .iter()
                    .position(|l| l.connects(a, b))
                    .unwrap_or_else(|| panic!("no link between {a} and {b}"));
                if self.link_factor[li] == factor {
                    false
                } else {
                    let old_w = self.link_latency_ms(li);
                    self.link_factor[li] = factor;
                    let new_w = self.link_latency_ms(li);
                    self.routes_after_link_shift(a, b, old_w, new_w);
                    true
                }
            }
            NetworkEvent::CapacityDegrade { node, factor } => {
                assert!(node.0 < n, "event node {node} out of range");
                assert!(
                    factor.is_finite() && factor > 0.0 && factor <= 1.0,
                    "capacity factor must be in (0, 1], got {factor}"
                );
                if self.capacity_factor[node.0] == factor {
                    false
                } else {
                    self.capacity_factor[node.0] = factor;
                    self.ledger
                        .set_capacity(node, self.effective_capacity(node))
                        .expect("ledger covers topology");
                    true
                }
            }
        };
        if changed {
            self.version += 1;
        }
        changed
    }

    /// After `x` died: only trees that routed *through* `x` change. A tree
    /// rooted at `s` routes through `x` iff `x` is some node's predecessor
    /// (interior use); the path *to* `x` itself just becomes unreachable.
    fn routes_after_node_down(&mut self, x: NodeId) {
        let n = self.topology.node_count();
        // The dead node's own tree is gone.
        self.routes.set_row(x, vec![(f64::INFINITY, None); n]);
        for s in (0..n).map(NodeId) {
            if s == x || !self.alive[s.0] {
                continue;
            }
            let used_as_interior = (0..n).any(|d| self.routes.predecessor(s, NodeId(d)) == Some(x));
            if used_as_interior {
                self.recompute_row(s);
            } else {
                self.routes.set_entry(s, x, f64::INFINITY, None);
            }
        }
    }

    /// After `x` revived: its own tree is rebuilt; another tree changes
    /// only if a path through `x` beats an existing distance. Any improved
    /// path enters and leaves `x` through live neighbours, so checking
    /// `dist(s, nb) + w(nb, x) + w(x, nb')` against `dist(s, nb')` over
    /// neighbour pairs is exact; when no improvement exists only the
    /// entry for `x` itself needs patching.
    fn routes_after_node_up(&mut self, x: NodeId) {
        self.recompute_row(x);
        let n = self.topology.node_count();
        let neighbours: Vec<(NodeId, usize)> = self
            .topology
            .neighbours(x)
            .iter()
            .copied()
            .filter(|&(nb, _)| self.alive[nb.0])
            .collect();
        for s in (0..n).map(NodeId) {
            if s == x || !self.alive[s.0] {
                continue;
            }
            // New distance to x: best live neighbour plus its link.
            let mut best: Option<(f64, NodeId)> = None;
            for &(nb, li) in &neighbours {
                let via = self.routes.latency_ms(s, nb) + self.link_latency_ms(li);
                if via.is_finite() && best.is_none_or(|(b, _)| via < b) {
                    best = Some((via, nb));
                }
            }
            let Some((dist_x, pred)) = best else {
                self.routes.set_entry(s, x, f64::INFINITY, None);
                continue;
            };
            let improves_others = neighbours
                .iter()
                .any(|&(nb, li)| dist_x + self.link_latency_ms(li) < self.routes.latency_ms(s, nb));
            if improves_others {
                self.recompute_row(s);
            } else {
                self.routes.set_entry(s, x, dist_x, Some(pred));
            }
        }
    }

    /// After link `(a, b)` shifted from `old_w` to `new_w`: trees that
    /// cross the link must be recomputed either way; trees that do not
    /// cross it can only change if the link got *cheaper* and now
    /// undercuts an existing distance.
    fn routes_after_link_shift(&mut self, a: NodeId, b: NodeId, old_w: f64, new_w: f64) {
        if !self.alive[a.0] || !self.alive[b.0] {
            return; // link unused while an endpoint is down
        }
        let n = self.topology.node_count();
        for s in (0..n).map(NodeId) {
            if !self.alive[s.0] {
                continue;
            }
            let crosses = self.routes.tree_uses_link(s, a, b);
            let undercuts = new_w < old_w
                && (self.routes.latency_ms(s, a) + new_w < self.routes.latency_ms(s, b)
                    || self.routes.latency_ms(s, b) + new_w < self.routes.latency_ms(s, a));
            if crosses || undercuts {
                self.recompute_row(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn view(sites: usize) -> NetworkView {
        NetworkView::new(TopologyBuilder::default().metro(sites))
    }

    fn assert_routes_match_rebuild(v: &NetworkView) {
        let fresh = v.rebuild_routes();
        let n = v.topology().node_count();
        for s in 0..n {
            for d in 0..n {
                let inc = v.routes().latency_ms(NodeId(s), NodeId(d));
                let ref_ = fresh.latency_ms(NodeId(s), NodeId(d));
                assert!(
                    inc == ref_ || (inc.is_infinite() && ref_.is_infinite()),
                    "route {s}->{d}: incremental {inc} vs rebuild {ref_}"
                );
            }
        }
    }

    #[test]
    fn fresh_view_is_healthy_and_matches_plain_build() {
        let v = view(5);
        assert_eq!(v.health(), NetworkHealth::healthy());
        assert_eq!(v.down_node_count(), 0);
        assert_eq!(v.version(), 0);
        assert_routes_match_rebuild(&v);
    }

    #[test]
    fn node_down_cuts_routes_and_up_restores_them() {
        let mut v = view(5);
        let before = v.routes().latency_ms(NodeId(0), NodeId(1));
        assert!(v.apply(&NetworkEvent::NodeDown { node: NodeId(1) }));
        assert!(!v.node_alive(NodeId(1)));
        assert!(v.routes().latency_ms(NodeId(0), NodeId(1)).is_infinite());
        assert!(v.routes().latency_ms(NodeId(1), NodeId(0)).is_infinite());
        assert_routes_match_rebuild(&v);
        // Idempotent.
        assert!(!v.apply(&NetworkEvent::NodeDown { node: NodeId(1) }));

        assert!(v.apply(&NetworkEvent::NodeUp { node: NodeId(1) }));
        assert_eq!(v.routes().latency_ms(NodeId(0), NodeId(1)), before);
        assert_routes_match_rebuild(&v);
        assert_eq!(v.version(), 2);
    }

    #[test]
    fn ring_failure_forces_the_long_way_round() {
        // On a ring, killing a neighbour reroutes traffic the other way.
        let mut v = NetworkView::new(
            TopologyBuilder {
                with_cloud: false,
                ..Default::default()
            }
            .ring(6),
        );
        let direct = v.routes().latency_ms(NodeId(0), NodeId(2));
        v.apply(&NetworkEvent::NodeDown { node: NodeId(1) });
        let detour = v.routes().latency_ms(NodeId(0), NodeId(2));
        assert!(detour > direct, "path must detour around the dead node");
        assert_routes_match_rebuild(&v);
        // Killing node 3 as well splits {2} off from {0, 5, 4}.
        v.apply(&NetworkEvent::NodeDown { node: NodeId(3) });
        assert!(v.routes().latency_ms(NodeId(0), NodeId(2)).is_infinite());
        assert_routes_match_rebuild(&v);
    }

    #[test]
    fn link_shift_stretches_and_restores_paths() {
        let mut v = view(4);
        let before = v.routes().latency_ms(NodeId(0), NodeId(1));
        assert!(v.apply(&NetworkEvent::LinkLatencyShift {
            a: NodeId(0),
            b: NodeId(1),
            factor: 10.0,
        }));
        let after = v.routes().latency_ms(NodeId(0), NodeId(1));
        assert!(after > before, "direct link now 10x: path must worsen");
        assert_routes_match_rebuild(&v);
        // Factors replace, not compound: back to 1.0 restores exactly.
        v.apply(&NetworkEvent::LinkLatencyShift {
            a: NodeId(0),
            b: NodeId(1),
            factor: 1.0,
        });
        assert_eq!(v.routes().latency_ms(NodeId(0), NodeId(1)), before);
        assert_routes_match_rebuild(&v);
    }

    #[test]
    fn capacity_degrade_shrinks_ledger_and_recovery_restores() {
        let mut v = view(3);
        let base = v.ledger().capacity_of(NodeId(0)).unwrap();
        assert!(v.apply(&NetworkEvent::CapacityDegrade {
            node: NodeId(0),
            factor: 0.5,
        }));
        let degraded = v.ledger().capacity_of(NodeId(0)).unwrap();
        assert!((degraded.cpu - base.cpu * 0.5).abs() < 1e-9);
        assert!(v.health().capacity_loss_fraction > 0.0);
        // Down-then-up resets the degradation.
        v.apply(&NetworkEvent::NodeDown { node: NodeId(0) });
        v.apply(&NetworkEvent::NodeUp { node: NodeId(0) });
        assert_eq!(v.ledger().capacity_of(NodeId(0)).unwrap(), base);
        assert_eq!(v.health(), NetworkHealth::healthy());
    }

    #[test]
    fn health_tracks_down_nodes() {
        let mut v = view(4); // 4 edge + cloud = 5 nodes
        v.apply(&NetworkEvent::NodeDown { node: NodeId(2) });
        let h = v.health();
        assert!((h.live_node_fraction - 4.0 / 5.0).abs() < 1e-9);
        assert!((h.capacity_loss_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn shift_on_missing_link_panics() {
        // Ring: nodes 0 and 2 are not adjacent.
        let mut v = NetworkView::new(
            TopologyBuilder {
                with_cloud: false,
                ..Default::default()
            }
            .ring(5),
        );
        v.apply(&NetworkEvent::LinkLatencyShift {
            a: NodeId(0),
            b: NodeId(2),
            factor: 2.0,
        });
    }
}
