//! Network links between nodes.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// An undirected link between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way latency in milliseconds (propagation + forwarding).
    pub latency_ms: f64,
    /// Capacity in Mbps.
    pub bandwidth_mbps: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are equal, or latency/bandwidth are not
    /// positive finite numbers.
    pub fn new(a: NodeId, b: NodeId, latency_ms: f64, bandwidth_mbps: f64) -> Self {
        assert_ne!(a, b, "self-loop link on {a}");
        assert!(
            latency_ms.is_finite() && latency_ms > 0.0,
            "latency must be positive, got {latency_ms}"
        );
        assert!(
            bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0,
            "bandwidth must be positive, got {bandwidth_mbps}"
        );
        Self {
            a,
            b,
            latency_ms,
            bandwidth_mbps,
        }
    }

    /// The endpoint opposite to `from`, or `None` if `from` is not an
    /// endpoint.
    pub fn other_end(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// `true` if the link connects `x` and `y` in either order.
    pub fn connects(&self, x: NodeId, y: NodeId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_end_works_both_ways() {
        let l = Link::new(NodeId(1), NodeId(2), 5.0, 1000.0);
        assert_eq!(l.other_end(NodeId(1)), Some(NodeId(2)));
        assert_eq!(l.other_end(NodeId(2)), Some(NodeId(1)));
        assert_eq!(l.other_end(NodeId(3)), None);
    }

    #[test]
    fn connects_is_symmetric() {
        let l = Link::new(NodeId(0), NodeId(5), 1.0, 100.0);
        assert!(l.connects(NodeId(0), NodeId(5)));
        assert!(l.connects(NodeId(5), NodeId(0)));
        assert!(!l.connects(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Link::new(NodeId(3), NodeId(3), 1.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_panics() {
        let _ = Link::new(NodeId(0), NodeId(1), 0.0, 100.0);
    }
}
