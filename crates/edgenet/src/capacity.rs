//! Per-node resource accounting with allocation handles.
//!
//! The ledger is the single source of truth for "does this node have room";
//! every placement decision in the orchestrator goes through it, and the
//! property tests assert alloc/free round-trips restore the exact state.

use crate::node::{NodeId, Resources};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Reasons a capacity operation can fail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityError {
    /// The demand exceeds remaining capacity at the node.
    Insufficient {
        /// The node that rejected the allocation.
        node: NodeId,
        /// What was requested.
        requested: Resources,
        /// What remained available.
        available: Resources,
    },
    /// The node id does not exist in the ledger.
    UnknownNode(NodeId),
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityError::Insufficient { node, requested, available } => write!(
                f,
                "insufficient capacity at {node}: requested {:.2} vCPU / {:.2} GB, available {:.2} vCPU / {:.2} GB",
                requested.cpu, requested.mem, available.cpu, available.mem
            ),
            CapacityError::UnknownNode(node) => write!(f, "unknown node {node}"),
        }
    }
}

impl std::error::Error for CapacityError {}

/// Tracks used resources per node against fixed capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityLedger {
    capacity: Vec<Resources>,
    used: Vec<Resources>,
}

impl CapacityLedger {
    /// Builds a ledger with all nodes empty.
    pub fn for_topology(topology: &Topology) -> Self {
        let capacity: Vec<Resources> = topology.nodes().iter().map(|n| n.capacity).collect();
        let used = vec![Resources::zero(); capacity.len()];
        Self { capacity, used }
    }

    /// Builds a ledger from explicit capacities (tests and tools).
    pub fn from_capacities(capacities: Vec<Resources>) -> Self {
        let used = vec![Resources::zero(); capacities.len()];
        Self {
            capacity: capacities,
            used,
        }
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.capacity.len()
    }

    /// Total capacity of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn capacity_of(&self, node: NodeId) -> Result<Resources, CapacityError> {
        self.capacity
            .get(node.0)
            .copied()
            .ok_or(CapacityError::UnknownNode(node))
    }

    /// Currently used resources at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn used_of(&self, node: NodeId) -> Result<Resources, CapacityError> {
        self.used
            .get(node.0)
            .copied()
            .ok_or(CapacityError::UnknownNode(node))
    }

    /// Remaining free resources at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn available_of(&self, node: NodeId) -> Result<Resources, CapacityError> {
        Ok(self
            .capacity_of(node)?
            .minus_saturating(&self.used_of(node)?))
    }

    /// Dominant utilization fraction at `node` (max over CPU/mem), in `[0,1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn utilization_of(&self, node: NodeId) -> Result<f64, CapacityError> {
        Ok(self
            .capacity_of(node)?
            .dominant_utilization(&self.used_of(node)?)
            .min(1.0))
    }

    /// `true` if `demand` currently fits at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn fits(&self, node: NodeId, demand: &Resources) -> Result<bool, CapacityError> {
        Ok(self.available_of(node)?.fits(demand))
    }

    /// Reserves `demand` at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::Insufficient`] (state unchanged) if the
    /// demand does not fit, or [`CapacityError::UnknownNode`].
    pub fn allocate(&mut self, node: NodeId, demand: &Resources) -> Result<(), CapacityError> {
        let available = self.available_of(node)?;
        if !available.fits(demand) {
            return Err(CapacityError::Insufficient {
                node,
                requested: *demand,
                available,
            });
        }
        self.used[node.0] = self.used[node.0].plus(demand);
        Ok(())
    }

    /// Releases `demand` at `node`. Saturates at zero (releasing more than
    /// allocated is a logic error upstream but must not corrupt the ledger).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn release(&mut self, node: NodeId, demand: &Resources) -> Result<(), CapacityError> {
        if node.0 >= self.used.len() {
            return Err(CapacityError::UnknownNode(node));
        }
        self.used[node.0] = self.used[node.0].minus_saturating(demand);
        Ok(())
    }

    /// Replaces the tracked capacity of `node` (hardware degradation or a
    /// recovered node rejoining at full strength). Usage is left
    /// untouched: it may temporarily exceed the new capacity, in which
    /// case nothing further fits until flows drain.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::UnknownNode`] for out-of-range ids.
    pub fn set_capacity(&mut self, node: NodeId, capacity: Resources) -> Result<(), CapacityError> {
        if node.0 >= self.capacity.len() {
            return Err(CapacityError::UnknownNode(node));
        }
        self.capacity[node.0] = capacity;
        Ok(())
    }

    /// Resets all usage to zero.
    pub fn clear(&mut self) {
        for u in &mut self.used {
            *u = Resources::zero();
        }
    }

    /// Mean dominant utilization across all nodes.
    pub fn mean_utilization(&self) -> f64 {
        if self.capacity.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.capacity.len())
            .map(|i| {
                self.capacity[i]
                    .dominant_utilization(&self.used[i])
                    .min(1.0)
            })
            .sum();
        sum / self.capacity.len() as f64
    }

    /// Total used CPU across all nodes.
    pub fn total_used_cpu(&self) -> f64 {
        self.used.iter().map(|u| u.cpu).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> CapacityLedger {
        CapacityLedger::from_capacities(vec![Resources::new(8.0, 16.0), Resources::new(4.0, 8.0)])
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut l = ledger();
        let before = l.clone();
        let demand = Resources::new(2.0, 4.0);
        l.allocate(NodeId(0), &demand).unwrap();
        assert_eq!(l.used_of(NodeId(0)).unwrap(), demand);
        l.release(NodeId(0), &demand).unwrap();
        assert_eq!(l, before);
    }

    #[test]
    fn over_allocation_rejected_and_state_unchanged() {
        let mut l = ledger();
        l.allocate(NodeId(1), &Resources::new(3.0, 1.0)).unwrap();
        let before = l.clone();
        let err = l
            .allocate(NodeId(1), &Resources::new(2.0, 1.0))
            .unwrap_err();
        match err {
            CapacityError::Insufficient { node, .. } => assert_eq!(node, NodeId(1)),
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(l, before);
    }

    #[test]
    fn exact_fit_allowed() {
        let mut l = ledger();
        l.allocate(NodeId(1), &Resources::new(4.0, 8.0)).unwrap();
        assert!((l.utilization_of(NodeId(1)).unwrap() - 1.0).abs() < 1e-9);
        assert!(!l.fits(NodeId(1), &Resources::new(0.1, 0.0)).unwrap());
    }

    #[test]
    fn release_saturates_at_zero() {
        let mut l = ledger();
        l.allocate(NodeId(0), &Resources::new(1.0, 1.0)).unwrap();
        l.release(NodeId(0), &Resources::new(100.0, 100.0)).unwrap();
        assert_eq!(l.used_of(NodeId(0)).unwrap(), Resources::zero());
    }

    #[test]
    fn unknown_node_errors() {
        let mut l = ledger();
        assert!(matches!(
            l.allocate(NodeId(9), &Resources::zero()),
            Err(CapacityError::UnknownNode(_))
        ));
        assert!(matches!(
            l.utilization_of(NodeId(9)),
            Err(CapacityError::UnknownNode(_))
        ));
        assert!(matches!(
            l.release(NodeId(9), &Resources::zero()),
            Err(CapacityError::UnknownNode(_))
        ));
    }

    #[test]
    fn mean_utilization_averages_nodes() {
        let mut l = ledger();
        l.allocate(NodeId(0), &Resources::new(4.0, 0.0)).unwrap(); // 50% dominant
        assert!((l.mean_utilization() - 0.25).abs() < 1e-9); // (0.5 + 0) / 2
    }

    #[test]
    fn set_capacity_degrades_and_restores() {
        let mut l = ledger();
        l.allocate(NodeId(0), &Resources::new(6.0, 6.0)).unwrap();
        // Degrade below current usage: nothing further fits, utilization
        // clamps at 1, usage is preserved.
        l.set_capacity(NodeId(0), Resources::new(4.0, 8.0)).unwrap();
        assert!(!l.fits(NodeId(0), &Resources::new(0.1, 0.1)).unwrap());
        assert!((l.utilization_of(NodeId(0)).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(l.used_of(NodeId(0)).unwrap(), Resources::new(6.0, 6.0));
        // Restore: headroom returns.
        l.set_capacity(NodeId(0), Resources::new(8.0, 16.0))
            .unwrap();
        assert!(l.fits(NodeId(0), &Resources::new(2.0, 4.0)).unwrap());
        assert!(matches!(
            l.set_capacity(NodeId(9), Resources::zero()),
            Err(CapacityError::UnknownNode(_))
        ));
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = ledger();
        l.allocate(NodeId(0), &Resources::new(1.0, 1.0)).unwrap();
        l.clear();
        assert_eq!(l.total_used_cpu(), 0.0);
    }

    #[test]
    fn error_display_is_informative() {
        let err = CapacityError::Insufficient {
            node: NodeId(2),
            requested: Resources::new(4.0, 2.0),
            available: Resources::new(1.0, 1.0),
        };
        let text = err.to_string();
        assert!(text.contains("n2"));
        assert!(text.contains("4.00"));
    }
}
