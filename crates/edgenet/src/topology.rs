//! Topology container and generators for geo-distributed edge networks.
//!
//! Generators cover the shapes used across the experiment suite:
//!
//! * [`TopologyBuilder::metro`] — N real metro sites (+ optional cloud),
//!   fully meshed with propagation-delay latencies. The headline topology.
//! * [`TopologyBuilder::ring`] — edge sites in a ring (sparse connectivity,
//!   stresses multi-hop routing).
//! * [`TopologyBuilder::waxman`] — the classic Waxman random graph over a
//!   square region (scalability sweeps with N up to ~100).

use crate::geo::{metro_catalog, GeoPoint};
use crate::link::Link;
use crate::node::{Node, NodeBuilder, NodeId, NodeKind, Resources};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An immutable network topology: nodes plus undirected links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[n] = list of (neighbour, link index).
    adjacency: Vec<Vec<(NodeId, usize)>>,
}

impl Topology {
    /// Builds a topology from parts, validating ids and connectivity
    /// structures.
    ///
    /// # Panics
    ///
    /// Panics if node ids are not dense `0..n`, a link references an
    /// unknown node, or a duplicate link exists.
    pub fn new(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        assert!(!nodes.is_empty(), "topology needs at least one node");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id.0, i, "node ids must be dense 0..n in order");
        }
        let n = nodes.len();
        let mut adjacency = vec![Vec::new(); n];
        for (li, link) in links.iter().enumerate() {
            assert!(link.a.0 < n && link.b.0 < n, "link endpoint out of range");
            assert!(
                !links[..li].iter().any(|l| l.connects(link.a, link.b)),
                "duplicate link between {} and {}",
                link.a,
                link.b
            );
            adjacency[link.a.0].push((link.b, li));
            adjacency[link.b.0].push((link.a, li));
        }
        Self {
            nodes,
            links,
            adjacency,
        }
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Neighbours of `id` as `(neighbour, link_index)` pairs.
    pub fn neighbours(&self, id: NodeId) -> &[(NodeId, usize)] {
        &self.adjacency[id.0]
    }

    /// Link by index.
    pub fn link(&self, index: usize) -> &Link {
        &self.links[index]
    }

    /// Ids of all edge (non-cloud) nodes.
    pub fn edge_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Edge)
            .map(|n| n.id)
            .collect()
    }

    /// Id of the first cloud node, if any.
    pub fn cloud_node(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.kind == NodeKind::Cloud)
            .map(|n| n.id)
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(node) = stack.pop() {
            for &(next, _) in self.neighbours(node) {
                if !seen[next.0] {
                    seen[next.0] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total CPU capacity across edge nodes.
    pub fn total_edge_cpu(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Edge)
            .map(|n| n.capacity.cpu)
            .sum()
    }
}

/// Parameters shared by the topology generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyBuilder {
    /// Capacity given to each edge node.
    pub edge_capacity: Resources,
    /// Bandwidth for generated links (Mbps).
    pub link_bandwidth_mbps: f64,
    /// Fixed per-hop forwarding latency added to propagation (ms).
    pub forwarding_latency_ms: f64,
    /// Whether to attach a remote cloud node linked to every edge site.
    pub with_cloud: bool,
    /// Extra one-way latency from any edge to the cloud (ms), added to
    /// propagation.
    pub cloud_extra_latency_ms: f64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self {
            edge_capacity: Resources::new(64.0, 256.0),
            link_bandwidth_mbps: 10_000.0,
            forwarding_latency_ms: 0.25,
            with_cloud: true,
            cloud_extra_latency_ms: 20.0,
        }
    }
}

impl TopologyBuilder {
    /// Full mesh over the first `n` metro sites from the catalog, with
    /// latencies from great-circle propagation delay. The cloud (when
    /// enabled) sits at a synthetic central-US location.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the catalog size.
    pub fn metro(&self, n: usize) -> Topology {
        let catalog = metro_catalog();
        assert!(n >= 1, "need at least one metro site");
        assert!(
            n <= catalog.len(),
            "metro preset supports up to {} sites",
            catalog.len()
        );
        let mut nodes: Vec<Node> = catalog[..n]
            .iter()
            .enumerate()
            .map(|(i, (name, point))| {
                NodeBuilder::edge(*name, *point)
                    .capacity(self.edge_capacity)
                    .build(NodeId(i))
            })
            .collect();
        let mut links = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let lat = nodes[i].location.propagation_delay_ms(&nodes[j].location)
                    + self.forwarding_latency_ms;
                links.push(Link::new(
                    NodeId(i),
                    NodeId(j),
                    lat,
                    self.link_bandwidth_mbps,
                ));
            }
        }
        if self.with_cloud {
            let cloud_id = NodeId(n);
            let cloud_loc = GeoPoint::new(39.0, -98.0); // central US
            nodes.push(NodeBuilder::cloud("cloud", cloud_loc).build(cloud_id));
            for (i, node) in nodes.iter().take(n).enumerate() {
                let lat = node.location.propagation_delay_ms(&cloud_loc)
                    + self.forwarding_latency_ms
                    + self.cloud_extra_latency_ms;
                links.push(Link::new(
                    NodeId(i),
                    cloud_id,
                    lat,
                    self.link_bandwidth_mbps,
                ));
            }
        }
        Topology::new(nodes, links)
    }

    /// `n` edge sites evenly spaced on a geographic circle, each linked to
    /// its two ring neighbours (sparse; forces multi-hop paths).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(&self, n: usize) -> Topology {
        assert!(n >= 3, "ring needs at least 3 nodes");
        let mut nodes = Vec::with_capacity(n + 1);
        for i in 0..n {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            // ~300 km radius circle centred on a reference point.
            let lat = 40.0 + 2.7 * angle.sin();
            let lon = -95.0 + 2.7 * angle.cos() / (40.0f64).to_radians().cos();
            nodes.push(
                NodeBuilder::edge(format!("ring-{i}"), GeoPoint::new(lat, lon))
                    .capacity(self.edge_capacity)
                    .build(NodeId(i)),
            );
        }
        let mut links = Vec::with_capacity(n);
        for i in 0..n {
            let j = (i + 1) % n;
            let lat = nodes[i].location.propagation_delay_ms(&nodes[j].location)
                + self.forwarding_latency_ms;
            links.push(Link::new(
                NodeId(i),
                NodeId(j),
                lat,
                self.link_bandwidth_mbps,
            ));
        }
        if self.with_cloud {
            let cloud_id = NodeId(n);
            let cloud_loc = GeoPoint::new(39.0, -98.0);
            nodes.push(NodeBuilder::cloud("cloud", cloud_loc).build(cloud_id));
            for (i, node) in nodes.iter().take(n).enumerate() {
                let lat = node.location.propagation_delay_ms(&cloud_loc)
                    + self.forwarding_latency_ms
                    + self.cloud_extra_latency_ms;
                links.push(Link::new(
                    NodeId(i),
                    cloud_id,
                    lat,
                    self.link_bandwidth_mbps,
                ));
            }
        }
        Topology::new(nodes, links)
    }

    /// Waxman random graph: `n` edge sites uniformly placed in a
    /// `side_km x side_km` square; an edge between u,v exists with
    /// probability `alpha * exp(-d(u,v) / (beta * L))` where `L` is the
    /// maximum distance. A spanning chain guarantees connectivity.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or parameters are out of `(0, 1]`.
    pub fn waxman<R: Rng>(
        &self,
        n: usize,
        side_km: f64,
        alpha: f64,
        beta: f64,
        rng: &mut R,
    ) -> Topology {
        assert!(n >= 2, "waxman needs at least 2 nodes");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0,1]");
        // Place nodes around a reference point; convert km offsets to degrees.
        let base = GeoPoint::new(40.0, -95.0);
        let km_per_deg_lat = 111.0;
        let km_per_deg_lon = 111.0 * base.lat.to_radians().cos();
        let mut nodes = Vec::with_capacity(n + 1);
        for i in 0..n {
            let dx: f64 = rng.gen_range(0.0..side_km);
            let dy: f64 = rng.gen_range(0.0..side_km);
            let point = GeoPoint::new(
                base.lat + dy / km_per_deg_lat,
                base.lon + dx / km_per_deg_lon,
            );
            nodes.push(
                NodeBuilder::edge(format!("wax-{i}"), point)
                    .capacity(self.edge_capacity)
                    .build(NodeId(i)),
            );
        }
        let max_d = (2.0f64).sqrt() * side_km;
        let mut links = Vec::new();
        let mut connected = vec![false; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = nodes[i].location.distance_km(&nodes[j].location);
                let p = alpha * (-d / (beta * max_d)).exp();
                if rng.gen::<f64>() < p {
                    let lat = nodes[i].location.propagation_delay_ms(&nodes[j].location)
                        + self.forwarding_latency_ms;
                    links.push(Link::new(
                        NodeId(i),
                        NodeId(j),
                        lat,
                        self.link_bandwidth_mbps,
                    ));
                    connected[i] = true;
                    connected[j] = true;
                }
            }
        }
        // Spanning chain i -> i+1 where missing, to guarantee connectivity.
        for i in 0..n - 1 {
            if !links.iter().any(|l| l.connects(NodeId(i), NodeId(i + 1))) {
                let lat = nodes[i]
                    .location
                    .propagation_delay_ms(&nodes[i + 1].location)
                    + self.forwarding_latency_ms;
                links.push(Link::new(
                    NodeId(i),
                    NodeId(i + 1),
                    lat.max(0.01),
                    self.link_bandwidth_mbps,
                ));
            }
        }
        if self.with_cloud {
            let cloud_id = NodeId(n);
            let cloud_loc = GeoPoint::new(39.0, -98.0);
            nodes.push(NodeBuilder::cloud("cloud", cloud_loc).build(cloud_id));
            for (i, node) in nodes.iter().take(n).enumerate() {
                let lat = node.location.propagation_delay_ms(&cloud_loc)
                    + self.forwarding_latency_ms
                    + self.cloud_extra_latency_ms;
                links.push(Link::new(
                    NodeId(i),
                    cloud_id,
                    lat,
                    self.link_bandwidth_mbps,
                ));
            }
        }
        Topology::new(nodes, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metro_topology_is_connected_full_mesh() {
        let topo = TopologyBuilder::default().metro(6);
        assert_eq!(topo.node_count(), 7); // 6 edges + cloud
        assert!(topo.is_connected());
        // Full mesh among 6 + 6 cloud links.
        assert_eq!(topo.link_count(), 6 * 5 / 2 + 6);
        assert!(topo.cloud_node().is_some());
        assert_eq!(topo.edge_nodes().len(), 6);
    }

    #[test]
    fn metro_without_cloud() {
        let builder = TopologyBuilder {
            with_cloud: false,
            ..Default::default()
        };
        let topo = builder.metro(4);
        assert_eq!(topo.node_count(), 4);
        assert!(topo.cloud_node().is_none());
    }

    #[test]
    fn ring_is_sparse_and_connected() {
        let builder = TopologyBuilder {
            with_cloud: false,
            ..Default::default()
        };
        let topo = builder.ring(8);
        assert_eq!(topo.link_count(), 8);
        assert!(topo.is_connected());
        // Each node has exactly 2 neighbours.
        for n in topo.nodes() {
            assert_eq!(topo.neighbours(n.id).len(), 2);
        }
    }

    #[test]
    fn waxman_is_connected_by_construction() {
        let mut rng = StdRng::seed_from_u64(5);
        let builder = TopologyBuilder {
            with_cloud: false,
            ..Default::default()
        };
        for n in [5, 20, 50] {
            let topo = builder.waxman(n, 500.0, 0.8, 0.3, &mut rng);
            assert!(topo.is_connected(), "waxman n={n} disconnected");
            assert_eq!(topo.node_count(), n);
        }
    }

    #[test]
    fn waxman_is_deterministic_per_seed() {
        let builder = TopologyBuilder {
            with_cloud: false,
            ..Default::default()
        };
        let a = builder.waxman(10, 300.0, 0.7, 0.4, &mut StdRng::seed_from_u64(9));
        let b = builder.waxman(10, 300.0, 0.7, 0.4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn cloud_links_have_extra_latency() {
        let topo = TopologyBuilder::default().metro(3);
        let cloud = topo.cloud_node().unwrap();
        for &(_, li) in topo.neighbours(cloud) {
            assert!(topo.link(li).latency_ms >= 20.0);
        }
    }

    #[test]
    fn neighbours_are_symmetric() {
        let topo = TopologyBuilder::default().metro(5);
        for node in topo.nodes() {
            for &(nb, _) in topo.neighbours(node.id) {
                assert!(topo.neighbours(nb).iter().any(|&(x, _)| x == node.id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let nodes = vec![
            NodeBuilder::edge("a", GeoPoint::new(0.0, 0.0)).build(NodeId(0)),
            NodeBuilder::edge("b", GeoPoint::new(1.0, 1.0)).build(NodeId(1)),
        ];
        let links = vec![
            Link::new(NodeId(0), NodeId(1), 1.0, 100.0),
            Link::new(NodeId(1), NodeId(0), 2.0, 100.0),
        ];
        let _ = Topology::new(nodes, links);
    }

    #[test]
    #[should_panic(expected = "dense 0..n")]
    fn non_dense_ids_rejected() {
        let nodes = vec![NodeBuilder::edge("a", GeoPoint::new(0.0, 0.0)).build(NodeId(3))];
        let _ = Topology::new(nodes, vec![]);
    }
}
