//! Monetary cost model for the operator: instance running cost,
//! deployment (instantiation) cost, and inter-node traffic cost.

use crate::node::Node;
use serde::{Deserialize, Serialize};

/// Pricing parameters shared across an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceModel {
    /// One-time cost of instantiating a VNF instance (image pull, boot),
    /// in USD.
    pub deployment_cost: f64,
    /// Cost per GB transferred between two *different* nodes (WAN traffic).
    pub wan_traffic_per_gb: f64,
    /// Cost per GB to/from the cloud (typically higher than edge-to-edge).
    pub cloud_traffic_per_gb: f64,
}

impl Default for PriceModel {
    fn default() -> Self {
        Self {
            deployment_cost: 0.02,
            wan_traffic_per_gb: 0.01,
            cloud_traffic_per_gb: 0.05,
        }
    }
}

impl PriceModel {
    /// Validates all prices are non-negative.
    ///
    /// # Panics
    ///
    /// Panics on negative prices.
    pub fn validate(&self) {
        assert!(
            self.deployment_cost >= 0.0,
            "deployment cost must be non-negative"
        );
        assert!(
            self.wan_traffic_per_gb >= 0.0,
            "wan traffic price must be non-negative"
        );
        assert!(
            self.cloud_traffic_per_gb >= 0.0,
            "cloud traffic price must be non-negative"
        );
    }

    /// Running cost in USD for `vcpus` virtual CPUs on `node` for
    /// `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if inputs are negative.
    pub fn compute_cost_usd(&self, node: &Node, vcpus: f64, duration_s: f64) -> f64 {
        assert!(
            vcpus >= 0.0 && duration_s >= 0.0,
            "inputs must be non-negative"
        );
        node.cpu_price_per_hour * vcpus * duration_s / 3600.0
    }

    /// Traffic cost in USD for moving `gb` gigabytes between `src` and
    /// `dst`. Same-node traffic is free; traffic touching a cloud node is
    /// billed at the cloud rate.
    ///
    /// # Panics
    ///
    /// Panics if `gb < 0`.
    pub fn traffic_cost_usd(&self, src: &Node, dst: &Node, gb: f64) -> f64 {
        assert!(gb >= 0.0, "traffic volume must be non-negative");
        if src.id == dst.id {
            return 0.0;
        }
        let rate = if src.is_cloud() || dst.is_cloud() {
            self.cloud_traffic_per_gb
        } else {
            self.wan_traffic_per_gb
        };
        rate * gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::node::{NodeBuilder, NodeId};

    fn edge(id: usize) -> Node {
        NodeBuilder::edge(format!("e{id}"), GeoPoint::new(0.0, 0.0))
            .cpu_price_per_hour(0.10)
            .build(NodeId(id))
    }

    fn cloud(id: usize) -> Node {
        NodeBuilder::cloud("c", GeoPoint::new(1.0, 1.0)).build(NodeId(id))
    }

    #[test]
    fn compute_cost_prorates_by_time() {
        let m = PriceModel::default();
        let n = edge(0);
        // 2 vCPU for 30 minutes at $0.10/vCPU-hr = $0.10.
        let cost = m.compute_cost_usd(&n, 2.0, 1800.0);
        assert!((cost - 0.10).abs() < 1e-9);
    }

    #[test]
    fn same_node_traffic_is_free() {
        let m = PriceModel::default();
        let n = edge(0);
        assert_eq!(m.traffic_cost_usd(&n, &n, 100.0), 0.0);
    }

    #[test]
    fn cloud_traffic_costs_more() {
        let m = PriceModel::default();
        let a = edge(0);
        let b = edge(1);
        let c = cloud(2);
        let edge_cost = m.traffic_cost_usd(&a, &b, 1.0);
        let cloud_cost = m.traffic_cost_usd(&a, &c, 1.0);
        assert!(cloud_cost > edge_cost);
    }

    #[test]
    fn zero_traffic_is_free() {
        let m = PriceModel::default();
        assert_eq!(m.traffic_cost_usd(&edge(0), &edge(1), 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_traffic_panics() {
        let m = PriceModel::default();
        let _ = m.traffic_cost_usd(&edge(0), &edge(1), -1.0);
    }
}
