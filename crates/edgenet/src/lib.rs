//! # edgenet — geo-distributed edge network simulator substrate
//!
//! Models the infrastructure the VNF manager operates on: compute nodes
//! (edge micro-datacenters plus a remote cloud) placed at real geographic
//! locations, links whose latencies derive from great-circle propagation
//! delay, latency-weighted shortest-path routing, per-node capacity
//! accounting, and energy/price models for the operator's cost function.
//! [`view::NetworkView`] wraps topology + routes + capacity into one
//! versioned API that stays consistent under dynamic [`view::NetworkEvent`]s
//! (node failure/recovery, link latency shifts, capacity degradation),
//! maintaining routes incrementally.
//!
//! The paper's evaluation is simulation-only; this crate is the faithful
//! synthetic substitute — the relative latency/cost structure (edge close
//! but scarce, cloud far but cheap and abundant) is what drives every
//! result shape, and that structure is preserved here.
//!
//! # Examples
//!
//! ```
//! use edgenet::prelude::*;
//!
//! // 6 US/EU metro edge sites + a cloud, fully meshed.
//! let topo = TopologyBuilder::default().metro(6);
//! assert!(topo.is_connected());
//!
//! let routes = RoutingTable::build(&topo);
//! let edges = topo.edge_nodes();
//! let rtt = 2.0 * routes.latency_ms(edges[0], edges[1]);
//! assert!(rtt > 0.0);
//!
//! // Capacity accounting.
//! let mut ledger = CapacityLedger::for_topology(&topo);
//! ledger.allocate(edges[0], &Resources::new(4.0, 8.0)).unwrap();
//! assert!(ledger.utilization_of(edges[0]).unwrap() > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacity;
pub mod energy;
pub mod geo;
pub mod link;
pub mod node;
pub mod price;
pub mod routing;
pub mod topology;
pub mod view;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::capacity::{CapacityError, CapacityLedger};
    pub use crate::energy::EnergyModel;
    pub use crate::geo::{metro_catalog, GeoPoint};
    pub use crate::link::Link;
    pub use crate::node::{Node, NodeBuilder, NodeId, NodeKind, Resources};
    pub use crate::price::PriceModel;
    pub use crate::routing::{dijkstra, dijkstra_filtered, Path, RoutingTable};
    pub use crate::topology::{Topology, TopologyBuilder};
    pub use crate::view::{NetworkEvent, NetworkHealth, NetworkView};
}
