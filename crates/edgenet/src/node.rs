//! Compute nodes (edge micro-datacenters and the remote cloud) and their
//! resource vectors.

use crate::geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Identifier of a node within a topology (dense, `0..node_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A two-dimensional resource vector: CPU (vCPU) and memory (GB).
///
/// All capacity accounting in the workspace uses this type; bandwidth is
/// tracked separately on links.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Virtual CPUs.
    pub cpu: f64,
    /// Memory in GB.
    pub mem: f64,
}

impl Resources {
    /// Creates a resource vector.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or non-finite.
    pub fn new(cpu: f64, mem: f64) -> Self {
        assert!(
            cpu.is_finite() && cpu >= 0.0,
            "cpu must be non-negative, got {cpu}"
        );
        assert!(
            mem.is_finite() && mem >= 0.0,
            "mem must be non-negative, got {mem}"
        );
        Self { cpu, mem }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Resources) -> Resources {
        Resources {
            cpu: self.cpu + other.cpu,
            mem: self.mem + other.mem,
        }
    }

    /// Component-wise difference; clamps at zero to guard rounding noise.
    pub fn minus_saturating(&self, other: &Resources) -> Resources {
        Resources {
            cpu: (self.cpu - other.cpu).max(0.0),
            mem: (self.mem - other.mem).max(0.0),
        }
    }

    /// Scales both components.
    pub fn scaled(&self, factor: f64) -> Resources {
        Resources {
            cpu: self.cpu * factor,
            mem: self.mem * factor,
        }
    }

    /// `true` if `demand` fits inside `self` (component-wise ≤, with a tiny
    /// epsilon for floating-point accumulation).
    pub fn fits(&self, demand: &Resources) -> bool {
        const EPS: f64 = 1e-9;
        demand.cpu <= self.cpu + EPS && demand.mem <= self.mem + EPS
    }

    /// The dominant (max) utilization fraction of `used` against `self`
    /// as capacity. Zero-capacity components count as fully utilized when
    /// any demand exists.
    pub fn dominant_utilization(&self, used: &Resources) -> f64 {
        let frac = |u: f64, c: f64| {
            if c <= 0.0 {
                if u > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                u / c
            }
        };
        frac(used.cpu, self.cpu).max(frac(used.mem, self.mem))
    }
}

/// Role of a node in the infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Resource-constrained edge site close to users.
    Edge,
    /// Remote cloud datacenter: effectively unconstrained but far away.
    Cloud,
}

/// A compute node in the geo-distributed infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier within the topology.
    pub id: NodeId,
    /// Human-readable name.
    pub name: String,
    /// Geographic location.
    pub location: GeoPoint,
    /// Edge or cloud.
    pub kind: NodeKind,
    /// Total resource capacity.
    pub capacity: Resources,
    /// Price per vCPU-hour for instances running here (USD).
    pub cpu_price_per_hour: f64,
    /// Idle power draw in watts (energy model input).
    pub idle_power_w: f64,
    /// Peak power draw in watts at full utilization.
    pub peak_power_w: f64,
}

impl Node {
    /// `true` for cloud nodes.
    pub fn is_cloud(&self) -> bool {
        self.kind == NodeKind::Cloud
    }
}

/// Builder for [`Node`] with sensible edge-site defaults.
#[derive(Debug, Clone)]
pub struct NodeBuilder {
    name: String,
    location: GeoPoint,
    kind: NodeKind,
    capacity: Resources,
    cpu_price_per_hour: f64,
    idle_power_w: f64,
    peak_power_w: f64,
}

impl NodeBuilder {
    /// Starts a builder for an edge node at `location`.
    pub fn edge(name: impl Into<String>, location: GeoPoint) -> Self {
        Self {
            name: name.into(),
            location,
            kind: NodeKind::Edge,
            // A typical micro-datacenter rack.
            capacity: Resources::new(64.0, 256.0),
            cpu_price_per_hour: 0.08,
            idle_power_w: 300.0,
            peak_power_w: 1000.0,
        }
    }

    /// Starts a builder for a cloud node at `location`.
    pub fn cloud(name: impl Into<String>, location: GeoPoint) -> Self {
        Self {
            name: name.into(),
            location,
            kind: NodeKind::Cloud,
            // Effectively unconstrained relative to edge workloads.
            capacity: Resources::new(4096.0, 16384.0),
            cpu_price_per_hour: 0.04,
            idle_power_w: 0.0, // cloud energy is priced into cpu_price
            peak_power_w: 0.0,
        }
    }

    /// Sets the capacity.
    pub fn capacity(mut self, capacity: Resources) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the per-vCPU-hour price.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn cpu_price_per_hour(mut self, price: f64) -> Self {
        assert!(price >= 0.0, "price must be non-negative");
        self.cpu_price_per_hour = price;
        self
    }

    /// Sets the idle/peak power envelope in watts.
    ///
    /// # Panics
    ///
    /// Panics if `idle > peak` or either is negative.
    pub fn power_envelope(mut self, idle_w: f64, peak_w: f64) -> Self {
        assert!(idle_w >= 0.0 && peak_w >= idle_w, "need 0 <= idle <= peak");
        self.idle_power_w = idle_w;
        self.peak_power_w = peak_w;
        self
    }

    /// Finalizes the node with the given id.
    pub fn build(self, id: NodeId) -> Node {
        Node {
            id,
            name: self.name,
            location: self.location,
            kind: self.kind,
            capacity: self.capacity,
            cpu_price_per_hour: self.cpu_price_per_hour,
            idle_power_w: self.idle_power_w,
            peak_power_w: self.peak_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> GeoPoint {
        GeoPoint::new(0.0, 0.0)
    }

    #[test]
    fn resources_fit() {
        let cap = Resources::new(8.0, 16.0);
        assert!(cap.fits(&Resources::new(8.0, 16.0)));
        assert!(cap.fits(&Resources::new(0.0, 0.0)));
        assert!(!cap.fits(&Resources::new(8.1, 1.0)));
        assert!(!cap.fits(&Resources::new(1.0, 16.1)));
    }

    #[test]
    fn resources_arithmetic() {
        let a = Resources::new(4.0, 8.0);
        let b = Resources::new(1.0, 2.0);
        assert_eq!(a.plus(&b), Resources::new(5.0, 10.0));
        assert_eq!(a.minus_saturating(&b), Resources::new(3.0, 6.0));
        assert_eq!(b.minus_saturating(&a), Resources::zero());
        assert_eq!(b.scaled(2.0), Resources::new(2.0, 4.0));
    }

    #[test]
    fn dominant_utilization_takes_max() {
        let cap = Resources::new(10.0, 100.0);
        let used = Resources::new(5.0, 90.0);
        assert!((cap.dominant_utilization(&used) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_with_demand_is_full() {
        let cap = Resources::new(0.0, 10.0);
        assert_eq!(cap.dominant_utilization(&Resources::new(1.0, 0.0)), 1.0);
        assert_eq!(cap.dominant_utilization(&Resources::zero()), 0.0);
    }

    #[test]
    fn builder_defaults() {
        let edge = NodeBuilder::edge("e", point()).build(NodeId(0));
        assert_eq!(edge.kind, NodeKind::Edge);
        assert!(!edge.is_cloud());
        let cloud = NodeBuilder::cloud("c", point()).build(NodeId(1));
        assert!(cloud.is_cloud());
        assert!(cloud.capacity.cpu > edge.capacity.cpu);
        assert!(cloud.cpu_price_per_hour < edge.cpu_price_per_hour);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_resources_panic() {
        let _ = Resources::new(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "idle <= peak")]
    fn bad_power_envelope_panics() {
        let _ = NodeBuilder::edge("e", point()).power_envelope(500.0, 100.0);
    }
}
