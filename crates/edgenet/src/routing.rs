//! Latency-weighted shortest-path routing (Dijkstra) with an all-pairs
//! cache sized for the simulator's hot loop.

use crate::node::NodeId;
use crate::topology::Topology;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A routed path: ordered node sequence plus total one-way latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node sequence from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Sum of link latencies along the path, in milliseconds.
    pub latency_ms: f64,
}

impl Path {
    /// Number of hops (links) on the path.
    pub fn hop_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken by node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra over link latency. Returns per-node
/// `(latency, predecessor)`; unreachable nodes have `f64::INFINITY`.
pub fn dijkstra(topology: &Topology, source: NodeId) -> Vec<(f64, Option<NodeId>)> {
    let alive = vec![true; topology.node_count()];
    dijkstra_filtered(topology, source, &alive, &|li| topology.link(li).latency_ms)
}

/// [`dijkstra`] over a degraded network: nodes with `alive[i] == false`
/// are skipped entirely (a dead node neither originates, terminates nor
/// forwards traffic) and each link's effective latency comes from
/// `link_latency(link_index)` instead of its base value. A dead source
/// yields an all-`INFINITY` row.
///
/// # Panics
///
/// Panics if `source` is out of range or `alive` does not cover the
/// topology.
pub fn dijkstra_filtered(
    topology: &Topology,
    source: NodeId,
    alive: &[bool],
    link_latency: &dyn Fn(usize) -> f64,
) -> Vec<(f64, Option<NodeId>)> {
    let n = topology.node_count();
    assert!(source.0 < n, "source {source} out of range");
    assert_eq!(alive.len(), n, "alive mask must cover every node");
    let mut dist: Vec<(f64, Option<NodeId>)> = vec![(f64::INFINITY, None); n];
    if !alive[source.0] {
        return dist;
    }
    dist[source.0] = (0.0, None);
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.0].0 {
            continue; // stale entry
        }
        for &(next, li) in topology.neighbours(node) {
            if !alive[next.0] {
                continue;
            }
            let w = link_latency(li);
            let candidate = cost + w;
            if candidate < dist[next.0].0 {
                dist[next.0] = (candidate, Some(node));
                heap.push(HeapEntry {
                    cost: candidate,
                    node: next,
                });
            }
        }
    }
    dist
}

/// All-pairs routing table: latency matrix plus path reconstruction.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// `latency[s * n + d]`, `INFINITY` if unreachable.
    latency: Vec<f64>,
    /// Predecessor of `d` on the shortest path from `s`.
    predecessor: Vec<Option<NodeId>>,
}

impl RoutingTable {
    /// Computes all-pairs shortest paths by running Dijkstra from every
    /// node (`O(n · (m + n) log n)` — fine for the topology sizes here).
    pub fn build(topology: &Topology) -> Self {
        let alive = vec![true; topology.node_count()];
        Self::build_filtered(topology, &alive, &|li| topology.link(li).latency_ms)
    }

    /// All-pairs shortest paths over a degraded network: dead nodes are
    /// excluded (their rows and columns are `INFINITY`) and link latencies
    /// come from `link_latency(link_index)`. See [`dijkstra_filtered`].
    ///
    /// # Panics
    ///
    /// Panics if `alive` does not cover the topology.
    pub fn build_filtered(
        topology: &Topology,
        alive: &[bool],
        link_latency: &dyn Fn(usize) -> f64,
    ) -> Self {
        let n = topology.node_count();
        let mut latency = Vec::with_capacity(n * n);
        let mut predecessor = Vec::with_capacity(n * n);
        for s in 0..n {
            for (d, pred) in dijkstra_filtered(topology, NodeId(s), alive, link_latency) {
                latency.push(d);
                predecessor.push(pred);
            }
        }
        Self {
            n,
            latency,
            predecessor,
        }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// One-way latency from `s` to `d` in milliseconds; `INFINITY` if
    /// unreachable. Zero when `s == d`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn latency_ms(&self, s: NodeId, d: NodeId) -> f64 {
        assert!(s.0 < self.n && d.0 < self.n, "routing lookup out of range");
        self.latency[s.0 * self.n + d.0]
    }

    /// `true` if `d` is reachable from `s`.
    pub fn reachable(&self, s: NodeId, d: NodeId) -> bool {
        self.latency_ms(s, d).is_finite()
    }

    /// Predecessor of `d` on the shortest path from `s` (`None` at the
    /// source itself or when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn predecessor(&self, s: NodeId, d: NodeId) -> Option<NodeId> {
        assert!(s.0 < self.n && d.0 < self.n, "routing lookup out of range");
        self.predecessor[s.0 * self.n + d.0]
    }

    /// Replaces the whole Dijkstra tree rooted at `s` (incremental route
    /// maintenance after a network event).
    pub(crate) fn set_row(&mut self, s: NodeId, row: Vec<(f64, Option<NodeId>)>) {
        assert_eq!(row.len(), self.n, "row must cover every node");
        for (d, (lat, pred)) in row.into_iter().enumerate() {
            self.latency[s.0 * self.n + d] = lat;
            self.predecessor[s.0 * self.n + d] = pred;
        }
    }

    /// Patches a single `(s, d)` entry (incremental route maintenance when
    /// an event provably only changes the path *to* one node).
    pub(crate) fn set_entry(&mut self, s: NodeId, d: NodeId, latency: f64, pred: Option<NodeId>) {
        self.latency[s.0 * self.n + d.0] = latency;
        self.predecessor[s.0 * self.n + d.0] = pred;
    }

    /// `true` if the undirected link `(a, b)` lies on the shortest-path
    /// tree rooted at `s` (i.e. some cached path from `s` crosses it).
    pub(crate) fn tree_uses_link(&self, s: NodeId, a: NodeId, b: NodeId) -> bool {
        self.predecessor[s.0 * self.n + b.0] == Some(a)
            || self.predecessor[s.0 * self.n + a.0] == Some(b)
    }

    /// Reconstructs the shortest path, or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn path(&self, s: NodeId, d: NodeId) -> Option<Path> {
        assert!(s.0 < self.n && d.0 < self.n, "routing lookup out of range");
        let total = self.latency_ms(s, d);
        if !total.is_finite() {
            return None;
        }
        let mut nodes = vec![d];
        let mut current = d;
        while current != s {
            let pred = self.predecessor[s.0 * self.n + current.0]?;
            nodes.push(pred);
            current = pred;
        }
        nodes.reverse();
        Some(Path {
            nodes,
            latency_ms: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn ring(n: usize) -> Topology {
        TopologyBuilder {
            with_cloud: false,
            ..Default::default()
        }
        .ring(n)
    }

    #[test]
    fn self_latency_is_zero() {
        let topo = ring(5);
        let table = RoutingTable::build(&topo);
        for i in 0..5 {
            assert_eq!(table.latency_ms(NodeId(i), NodeId(i)), 0.0);
        }
    }

    #[test]
    fn latency_is_symmetric_on_undirected_graph() {
        let topo = TopologyBuilder::default().metro(6);
        let table = RoutingTable::build(&topo);
        for a in 0..topo.node_count() {
            for b in 0..topo.node_count() {
                let ab = table.latency_ms(NodeId(a), NodeId(b));
                let ba = table.latency_ms(NodeId(b), NodeId(a));
                assert!((ab - ba).abs() < 1e-9, "asymmetry {a}->{b}");
            }
        }
    }

    #[test]
    fn ring_path_takes_shorter_arc() {
        let topo = ring(6);
        let table = RoutingTable::build(&topo);
        // From 0 to 2: two hops forward vs four hops back.
        let p = table.path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn path_latency_matches_sum_of_links() {
        let topo = ring(5);
        let table = RoutingTable::build(&topo);
        let p = table.path(NodeId(0), NodeId(2)).unwrap();
        let mut sum = 0.0;
        for w in p.nodes.windows(2) {
            let li = topo
                .neighbours(w[0])
                .iter()
                .find(|&&(nb, _)| nb == w[1])
                .map(|&(_, li)| li)
                .expect("link exists");
            sum += topo.link(li).latency_ms;
        }
        assert!((p.latency_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_holds() {
        let topo = TopologyBuilder::default().metro(8);
        let table = RoutingTable::build(&topo);
        let n = topo.node_count();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let direct = table.latency_ms(NodeId(a), NodeId(c));
                    let via = table.latency_ms(NodeId(a), NodeId(b))
                        + table.latency_ms(NodeId(b), NodeId(c));
                    assert!(direct <= via + 1e-9, "triangle violated {a}->{b}->{c}");
                }
            }
        }
    }

    #[test]
    fn dijkstra_direct_matches_table() {
        let topo = ring(7);
        let table = RoutingTable::build(&topo);
        let from_zero = dijkstra(&topo, NodeId(0));
        for (d, entry) in from_zero.iter().enumerate() {
            assert!((entry.0 - table.latency_ms(NodeId(0), NodeId(d))).abs() < 1e-12);
        }
    }

    #[test]
    fn path_endpoints_are_correct() {
        let topo = TopologyBuilder::default().metro(5);
        let table = RoutingTable::build(&topo);
        let p = table.path(NodeId(1), NodeId(4)).unwrap();
        assert_eq!(*p.nodes.first().unwrap(), NodeId(1));
        assert_eq!(*p.nodes.last().unwrap(), NodeId(4));
    }
}
