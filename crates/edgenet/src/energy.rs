//! Linear server power model and per-slot energy cost.
//!
//! The standard datacenter model: `P(u) = P_idle + (P_peak − P_idle) · u`
//! for utilization `u ∈ [0, 1]` while the node is powered on.

use crate::node::Node;
use serde::{Deserialize, Serialize};

/// Energy pricing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Electricity price in USD per kWh.
    pub price_per_kwh: f64,
    /// Power-usage effectiveness multiplier (cooling/overhead), ≥ 1.
    pub pue: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            price_per_kwh: 0.12,
            pue: 1.5,
        }
    }
}

impl EnergyModel {
    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics if the price is negative or `pue < 1`.
    pub fn validate(&self) {
        assert!(
            self.price_per_kwh >= 0.0,
            "energy price must be non-negative"
        );
        assert!(self.pue >= 1.0, "PUE must be at least 1");
    }

    /// Instantaneous power draw of `node` at `utilization ∈ [0,1]`, in
    /// watts (before PUE).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn power_w(&self, node: &Node, utilization: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0,1], got {utilization}"
        );
        node.idle_power_w + (node.peak_power_w - node.idle_power_w) * utilization
    }

    /// Energy cost in USD for running `node` at `utilization` for
    /// `duration_s` seconds, including PUE overhead.
    ///
    /// # Panics
    ///
    /// Panics if `utilization ∉ [0,1]` or `duration_s < 0`.
    pub fn cost_usd(&self, node: &Node, utilization: f64, duration_s: f64) -> f64 {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        let kwh = self.power_w(node, utilization) * self.pue * duration_s / 3600.0 / 1000.0;
        kwh * self.price_per_kwh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::node::{NodeBuilder, NodeId};

    fn node() -> Node {
        NodeBuilder::edge("e", GeoPoint::new(0.0, 0.0))
            .power_envelope(200.0, 1000.0)
            .build(NodeId(0))
    }

    #[test]
    fn idle_power_at_zero_utilization() {
        let m = EnergyModel::default();
        assert_eq!(m.power_w(&node(), 0.0), 200.0);
    }

    #[test]
    fn peak_power_at_full_utilization() {
        let m = EnergyModel::default();
        assert_eq!(m.power_w(&node(), 1.0), 1000.0);
    }

    #[test]
    fn power_is_linear_in_utilization() {
        let m = EnergyModel::default();
        assert_eq!(m.power_w(&node(), 0.5), 600.0);
    }

    #[test]
    fn cost_scales_with_duration_and_pue() {
        let m = EnergyModel {
            price_per_kwh: 0.10,
            pue: 2.0,
        };
        // 1000 W * 2.0 PUE for 1 hour = 2 kWh -> $0.20.
        let cost = m.cost_usd(&node(), 1.0, 3600.0);
        assert!((cost - 0.20).abs() < 1e-9);
        // Zero duration, zero cost.
        assert_eq!(m.cost_usd(&node(), 1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization must be in [0,1]")]
    fn out_of_range_utilization_panics() {
        let m = EnergyModel::default();
        let _ = m.power_w(&node(), 1.5);
    }

    #[test]
    #[should_panic(expected = "PUE must be at least 1")]
    fn invalid_pue_panics() {
        EnergyModel {
            price_per_kwh: 0.1,
            pue: 0.5,
        }
        .validate();
    }
}
