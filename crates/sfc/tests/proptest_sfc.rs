//! Property tests for the SFC layer: instance-pool accounting and
//! latency-evaluation invariants.

use edgenet::prelude::*;
use proptest::prelude::*;
use sfc::prelude::*;

fn catalogs() -> (VnfCatalog, ChainCatalog) {
    let vnfs = VnfCatalog::standard();
    let chains = ChainCatalog::standard(&vnfs);
    (vnfs, chains)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pool_flow_accounting_never_goes_negative(
        ops in proptest::collection::vec((0usize..3, 0.0f64..50.0, proptest::bool::ANY), 1..60)
    ) {
        let (_vnfs, _) = catalogs();
        let mut pool = InstancePool::new();
        let ids: Vec<InstanceId> =
            (0..3).map(|i| pool.spawn(VnfTypeId(i % 2), NodeId(i), 0)).collect();
        for (which, lambda, add) in ops {
            let id = ids[which];
            if add {
                pool.add_flow(id, lambda).unwrap();
            } else {
                pool.remove_flow(id, lambda).unwrap();
            }
            let inst = pool.get(id).unwrap();
            prop_assert!(inst.lambda_rps >= 0.0, "lambda went negative");
        }
    }

    #[test]
    fn add_then_remove_restores_lambda(
        lambdas in proptest::collection::vec(0.1f64..30.0, 1..20)
    ) {
        let mut pool = InstancePool::new();
        let id = pool.spawn(VnfTypeId(0), NodeId(0), 0);
        for &l in &lambdas {
            pool.add_flow(id, l).unwrap();
        }
        for &l in lambdas.iter().rev() {
            pool.remove_flow(id, l).unwrap();
        }
        let inst = pool.get(id).unwrap();
        prop_assert!(inst.lambda_rps.abs() < 1e-6);
        prop_assert_eq!(inst.flows, 0);
    }

    #[test]
    fn mm1_sojourn_monotone_in_lambda(mu in 10.0f64..1000.0, split in 0.01f64..0.98) {
        let lambda_lo = mu * split * 0.5;
        let lambda_hi = mu * split;
        prop_assert!(mm1_sojourn_ms(mu, lambda_lo) <= mm1_sojourn_ms(mu, lambda_hi));
    }

    #[test]
    fn chain_latency_decomposition_sums(
        node_picks in proptest::collection::vec(0usize..4, 2..3),
        source in 0usize..4,
    ) {
        // VoIP chain (2 VNFs) placed arbitrarily: breakdown must sum to total
        // and grow when any component grows.
        let (vnfs, chains) = catalogs();
        let topo = TopologyBuilder::default().metro(4);
        let routes = RoutingTable::build(&topo);
        let chain = chains.get(ChainId(1)).clone();
        let mut pool = InstancePool::new();
        let instances: Vec<InstanceId> = chain
            .vnfs
            .iter()
            .zip(node_picks.iter())
            .map(|(&v, &n)| pool.spawn(v, NodeId(n), 0))
            .collect();
        let assignment = ChainAssignment { request: RequestId(0), instances };
        let breakdown =
            assignment_latency(&assignment, &chain, NodeId(source), &pool, &vnfs, &routes).unwrap();
        let total = breakdown.total_ms();
        prop_assert!(
            (total - (breakdown.network_ms + breakdown.processing_ms + breakdown.queueing_ms)).abs()
                < 1e-9
        );
        prop_assert!(breakdown.network_ms >= 0.0);
        prop_assert!(breakdown.queueing_ms > 0.0, "idle queues still serve");
    }

    #[test]
    fn colocated_placement_never_slower_than_detour(
        source in 0usize..4,
        detour in 0usize..4,
    ) {
        // Placing both VNFs at the source is never worse on *network*
        // latency than bouncing through a detour node.
        let (vnfs, chains) = catalogs();
        let topo = TopologyBuilder::default().metro(4);
        let routes = RoutingTable::build(&topo);
        let chain = chains.get(ChainId(1)).clone();
        let src = NodeId(source);

        let colocated = hypothetical_latency_ms(
            &chain, src, &[src, src], &[0.0, 0.0], &vnfs, &routes,
        );
        let detoured = hypothetical_latency_ms(
            &chain, src, &[NodeId(detour), src], &[0.0, 0.0], &vnfs, &routes,
        );
        prop_assert!(colocated <= detoured + 1e-9);
    }

    #[test]
    fn used_at_matches_manual_sum(picks in proptest::collection::vec((0usize..8, 0usize..3), 0..15)) {
        let (vnfs, _) = catalogs();
        let mut pool = InstancePool::new();
        for &(vnf, node) in &picks {
            pool.spawn(VnfTypeId(vnf), NodeId(node), 0);
        }
        for node in 0..3 {
            let used = pool.used_at(NodeId(node), &vnfs);
            let manual_cpu: f64 = picks
                .iter()
                .filter(|&&(_, n)| n == node)
                .map(|&(v, _)| vnfs.get(VnfTypeId(v)).demand.cpu)
                .sum();
            prop_assert!((used.cpu - manual_cpu).abs() < 1e-9);
        }
    }
}
