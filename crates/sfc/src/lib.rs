//! # sfc — service function chains and VNF lifecycle model
//!
//! The objects the paper's manager orchestrates: a catalog of VNF types
//! (resource footprint, M/M/1 service rate, fixed processing latency),
//! service chains with latency SLAs, user requests, live instances with
//! flow/load accounting, and end-to-end latency evaluation of chain
//! placements over an [`edgenet`] topology.
//!
//! # Examples
//!
//! ```
//! use sfc::prelude::*;
//! use edgenet::prelude::*;
//!
//! let vnfs = VnfCatalog::standard();
//! let chains = ChainCatalog::standard(&vnfs);
//!
//! // Spawn the VoIP chain (nat → firewall) on one node and measure latency.
//! let topo = TopologyBuilder::default().metro(3);
//! let routes = RoutingTable::build(&topo);
//! let mut pool = InstancePool::new();
//! let voip = chains.get(ChainId(1)).clone();
//! let instances: Vec<_> = voip.vnfs.iter()
//!     .map(|&v| pool.spawn(v, NodeId(0), 0))
//!     .collect();
//! let assignment = ChainAssignment { request: RequestId(1), instances };
//! let latency = assignment_latency(&assignment, &voip, NodeId(0), &pool, &vnfs, &routes).unwrap();
//! assert!(latency.total_ms() < voip.latency_budget_ms);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod delay;
pub mod instance;
pub mod placement;
pub mod request;
pub mod vnf;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::chain::{ChainCatalog, ChainId, ChainSpec};
    pub use crate::delay::{admits_load, mm1_sojourn_ms, mm1_utilization};
    pub use crate::instance::{Instance, InstanceError, InstanceId, InstancePool};
    pub use crate::placement::{
        assignment_latency, hypothetical_latency_ms, validate_assignment, AssignmentError,
        ChainAssignment, LatencyBreakdown,
    };
    pub use crate::request::{Request, RequestId};
    pub use crate::vnf::{VnfCatalog, VnfType, VnfTypeId};
}
