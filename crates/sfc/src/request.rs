//! User requests for service-chain traversal.

use crate::chain::ChainId;
use edgenet::node::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a request within a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A flow request: a user at `source` needs chain `chain` for
/// `duration_slots` time slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Requested service chain.
    pub chain: ChainId,
    /// Edge node closest to the user (traffic ingress).
    pub source: NodeId,
    /// Arrival time in slots.
    pub arrival_slot: u64,
    /// Lifetime in slots (≥ 1).
    pub duration_slots: u32,
    /// Explicit holding time in milliseconds, for engines that resolve
    /// sub-slot lifetimes. `None` (the default) means the lifetime is
    /// exactly `duration_slots` slots. When set, `duration_slots` must
    /// still hold the slot-quantized (rounded-up) lifetime so slot-based
    /// consumers keep working; event-driven consumers prefer this field.
    pub duration_ms: Option<u64>,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `duration_slots == 0`.
    pub fn new(
        id: RequestId,
        chain: ChainId,
        source: NodeId,
        arrival_slot: u64,
        duration_slots: u32,
    ) -> Self {
        assert!(duration_slots >= 1, "request must last at least one slot");
        Self {
            id,
            chain,
            source,
            arrival_slot,
            duration_slots,
            duration_ms: None,
        }
    }

    /// Sets an explicit millisecond holding time (builder style). The
    /// slot-quantized `duration_slots` is left untouched — callers keep
    /// it as the rounded-up lifetime for slot-based consumers.
    ///
    /// # Panics
    ///
    /// Panics if `ms == 0`.
    pub fn with_duration_ms(mut self, ms: u64) -> Self {
        assert!(ms >= 1, "request must last at least one millisecond");
        self.duration_ms = Some(ms);
        self
    }

    /// First slot in which the request is no longer active.
    pub fn departure_slot(&self) -> u64 {
        self.arrival_slot + self.duration_slots as u64
    }

    /// `true` if the request is active during `slot`.
    pub fn active_at(&self, slot: u64) -> bool {
        slot >= self.arrival_slot && slot < self.departure_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_window() {
        let r = Request::new(RequestId(1), ChainId(0), NodeId(2), 10, 3);
        assert!(!r.active_at(9));
        assert!(r.active_at(10));
        assert!(r.active_at(12));
        assert!(!r.active_at(13));
        assert_eq!(r.departure_slot(), 13);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_duration_rejected() {
        let _ = Request::new(RequestId(0), ChainId(0), NodeId(0), 0, 0);
    }
}
