//! Live VNF instances and the pool tracking them.

use crate::vnf::{VnfCatalog, VnfTypeId};
use edgenet::node::{NodeId, Resources};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a live VNF instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// A running VNF instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Unique id.
    pub id: InstanceId,
    /// The VNF type this instance runs.
    pub vnf_type: VnfTypeId,
    /// Hosting node.
    pub node: NodeId,
    /// Aggregate arrival rate currently assigned (M/M/1 λ), in rps.
    pub lambda_rps: f64,
    /// Number of flows currently routed through this instance.
    pub flows: u32,
    /// Slot at which the instance was created.
    pub created_slot: u64,
}

/// Errors from instance-pool operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstanceError {
    /// Unknown instance id.
    Unknown(InstanceId),
    /// Attempted to retire an instance that still serves flows.
    Busy(InstanceId),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::Unknown(id) => write!(f, "unknown instance {id}"),
            InstanceError::Busy(id) => write!(f, "instance {id} still serves flows"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// The pool of all live instances in a simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstancePool {
    instances: BTreeMap<u64, Instance>,
    next_id: u64,
}

impl InstancePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a new instance of `vnf_type` at `node`; returns its id.
    pub fn spawn(&mut self, vnf_type: VnfTypeId, node: NodeId, slot: u64) -> InstanceId {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.instances.insert(
            id.0,
            Instance {
                id,
                vnf_type,
                node,
                lambda_rps: 0.0,
                flows: 0,
                created_slot: slot,
            },
        );
        id
    }

    /// Removes an idle instance.
    ///
    /// # Errors
    ///
    /// [`InstanceError::Busy`] if it still serves flows,
    /// [`InstanceError::Unknown`] if the id does not exist.
    pub fn retire(&mut self, id: InstanceId) -> Result<Instance, InstanceError> {
        match self.instances.get(&id.0) {
            None => Err(InstanceError::Unknown(id)),
            Some(inst) if inst.flows > 0 => Err(InstanceError::Busy(id)),
            Some(_) => Ok(self.instances.remove(&id.0).expect("checked present")),
        }
    }

    /// Instance by id.
    pub fn get(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id.0)
    }

    /// Adds one flow with `lambda_rps` to the instance.
    ///
    /// # Errors
    ///
    /// [`InstanceError::Unknown`] if the id does not exist.
    pub fn add_flow(&mut self, id: InstanceId, lambda_rps: f64) -> Result<(), InstanceError> {
        let inst = self
            .instances
            .get_mut(&id.0)
            .ok_or(InstanceError::Unknown(id))?;
        inst.lambda_rps += lambda_rps;
        inst.flows += 1;
        Ok(())
    }

    /// Removes one flow with `lambda_rps` from the instance; saturates at
    /// zero against float drift.
    ///
    /// # Errors
    ///
    /// [`InstanceError::Unknown`] if the id does not exist.
    pub fn remove_flow(&mut self, id: InstanceId, lambda_rps: f64) -> Result<(), InstanceError> {
        let inst = self
            .instances
            .get_mut(&id.0)
            .ok_or(InstanceError::Unknown(id))?;
        inst.lambda_rps = (inst.lambda_rps - lambda_rps).max(0.0);
        inst.flows = inst.flows.saturating_sub(1);
        Ok(())
    }

    /// All instances, ordered by id.
    pub fn iter(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when no instances are live.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Instances of `vnf_type` hosted at `node`.
    pub fn instances_of(&self, vnf_type: VnfTypeId, node: NodeId) -> Vec<&Instance> {
        self.instances
            .values()
            .filter(|i| i.vnf_type == vnf_type && i.node == node)
            .collect()
    }

    /// Count of instances per node for `vnf_type`, over `node_count` nodes.
    pub fn count_per_node(&self, vnf_type: VnfTypeId, node_count: usize) -> Vec<usize> {
        let mut counts = vec![0; node_count];
        for inst in self.instances.values() {
            if inst.vnf_type == vnf_type && inst.node.0 < node_count {
                counts[inst.node.0] += 1;
            }
        }
        counts
    }

    /// Ids of every instance hosted at `node` (any type), ordered by id.
    pub fn instances_on(&self, node: NodeId) -> Vec<InstanceId> {
        self.instances
            .values()
            .filter(|i| i.node == node)
            .map(|i| i.id)
            .collect()
    }

    /// Force-removes every instance hosted at `node` (node failure): the
    /// instances are destroyed regardless of the flows they serve — the
    /// caller owns disrupting those flows. Returns the removed instances
    /// ordered by id.
    pub fn evict_node(&mut self, node: NodeId) -> Vec<Instance> {
        let ids = self.instances_on(node);
        ids.into_iter()
            .map(|id| self.instances.remove(&id.0).expect("listed instance"))
            .collect()
    }

    /// Idle instances (zero flows), optionally older than `min_age_slots`.
    pub fn idle_instances(&self, current_slot: u64, min_age_slots: u64) -> Vec<InstanceId> {
        self.instances
            .values()
            .filter(|i| {
                i.flows == 0 && current_slot.saturating_sub(i.created_slot) >= min_age_slots
            })
            .map(|i| i.id)
            .collect()
    }

    /// Total resources consumed at `node` according to `catalog`.
    pub fn used_at(&self, node: NodeId, catalog: &VnfCatalog) -> Resources {
        self.instances
            .values()
            .filter(|i| i.node == node)
            .fold(Resources::zero(), |acc, i| {
                acc.plus(&catalog.get(i.vnf_type).demand)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_unique_ids() {
        let mut pool = InstancePool::new();
        let a = pool.spawn(VnfTypeId(0), NodeId(0), 0);
        let b = pool.spawn(VnfTypeId(0), NodeId(0), 0);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn flow_accounting() {
        let mut pool = InstancePool::new();
        let id = pool.spawn(VnfTypeId(1), NodeId(2), 5);
        pool.add_flow(id, 10.0).unwrap();
        pool.add_flow(id, 5.0).unwrap();
        let inst = pool.get(id).unwrap();
        assert_eq!(inst.flows, 2);
        assert!((inst.lambda_rps - 15.0).abs() < 1e-9);
        pool.remove_flow(id, 10.0).unwrap();
        let inst = pool.get(id).unwrap();
        assert_eq!(inst.flows, 1);
        assert!((inst.lambda_rps - 5.0).abs() < 1e-9);
    }

    #[test]
    fn retire_rejects_busy() {
        let mut pool = InstancePool::new();
        let id = pool.spawn(VnfTypeId(0), NodeId(0), 0);
        pool.add_flow(id, 1.0).unwrap();
        assert_eq!(pool.retire(id), Err(InstanceError::Busy(id)));
        pool.remove_flow(id, 1.0).unwrap();
        assert!(pool.retire(id).is_ok());
        assert!(pool.is_empty());
    }

    #[test]
    fn unknown_instance_errors() {
        let mut pool = InstancePool::new();
        assert_eq!(
            pool.add_flow(InstanceId(9), 1.0),
            Err(InstanceError::Unknown(InstanceId(9)))
        );
        assert_eq!(
            pool.retire(InstanceId(9)),
            Err(InstanceError::Unknown(InstanceId(9)))
        );
    }

    #[test]
    fn counting_and_filtering() {
        let mut pool = InstancePool::new();
        pool.spawn(VnfTypeId(0), NodeId(0), 0);
        pool.spawn(VnfTypeId(0), NodeId(1), 0);
        pool.spawn(VnfTypeId(1), NodeId(1), 0);
        assert_eq!(pool.count_per_node(VnfTypeId(0), 3), vec![1, 1, 0]);
        assert_eq!(pool.instances_of(VnfTypeId(1), NodeId(1)).len(), 1);
    }

    #[test]
    fn idle_instances_respect_age() {
        let mut pool = InstancePool::new();
        let old = pool.spawn(VnfTypeId(0), NodeId(0), 0);
        let fresh = pool.spawn(VnfTypeId(0), NodeId(0), 9);
        let busy = pool.spawn(VnfTypeId(0), NodeId(0), 0);
        pool.add_flow(busy, 1.0).unwrap();
        let idle = pool.idle_instances(10, 5);
        assert!(idle.contains(&old));
        assert!(!idle.contains(&fresh));
        assert!(!idle.contains(&busy));
    }

    #[test]
    fn evict_node_removes_busy_instances_and_spares_others() {
        let mut pool = InstancePool::new();
        let dead_busy = pool.spawn(VnfTypeId(0), NodeId(1), 0);
        let dead_idle = pool.spawn(VnfTypeId(1), NodeId(1), 0);
        let survivor = pool.spawn(VnfTypeId(0), NodeId(2), 0);
        pool.add_flow(dead_busy, 3.0).unwrap();
        pool.add_flow(survivor, 1.0).unwrap();
        assert_eq!(pool.instances_on(NodeId(1)), vec![dead_busy, dead_idle]);
        let evicted = pool.evict_node(NodeId(1));
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].id, dead_busy);
        assert_eq!(evicted[0].flows, 1, "eviction ignores live flows");
        assert_eq!(pool.len(), 1);
        assert!(pool.get(survivor).is_some());
        assert!(pool.instances_on(NodeId(1)).is_empty());
        assert!(pool.evict_node(NodeId(1)).is_empty(), "idempotent");
    }

    #[test]
    fn used_at_sums_demands() {
        let catalog = VnfCatalog::standard();
        let mut pool = InstancePool::new();
        pool.spawn(VnfTypeId(0), NodeId(0), 0); // nat: 1 cpu
        pool.spawn(VnfTypeId(1), NodeId(0), 0); // firewall: 2 cpu
        pool.spawn(VnfTypeId(1), NodeId(1), 0);
        let used = pool.used_at(NodeId(0), &catalog);
        assert!((used.cpu - 3.0).abs() < 1e-9);
    }
}
