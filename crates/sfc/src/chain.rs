//! Service function chains: ordered VNF sequences with SLA budgets.

use crate::vnf::{VnfCatalog, VnfTypeId};
use edgenet::node::Resources;
use serde::{Deserialize, Serialize};

/// Identifier of a chain specification (dense within a [`ChainCatalog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChainId(pub usize);

impl std::fmt::Display for ChainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sfc{}", self.0)
    }
}

/// A service function chain specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Dense id within the catalog.
    pub id: ChainId,
    /// Human-readable name.
    pub name: String,
    /// Ordered VNF types traffic must traverse.
    pub vnfs: Vec<VnfTypeId>,
    /// End-to-end latency SLA in milliseconds (one-way through the chain).
    pub latency_budget_ms: f64,
    /// Mean per-request traffic volume through the chain, in GB.
    pub traffic_gb: f64,
    /// Mean request intensity one admitted flow adds to each traversed
    /// instance, in requests/second (the M/M/1 λ contribution).
    pub arrival_rate_rps: f64,
}

impl ChainSpec {
    /// Creates a chain spec.
    ///
    /// # Panics
    ///
    /// Panics if the VNF list is empty or numeric parameters are not
    /// positive/finite.
    pub fn new(
        id: ChainId,
        name: impl Into<String>,
        vnfs: Vec<VnfTypeId>,
        latency_budget_ms: f64,
        traffic_gb: f64,
        arrival_rate_rps: f64,
    ) -> Self {
        assert!(!vnfs.is_empty(), "chain must contain at least one VNF");
        assert!(
            latency_budget_ms.is_finite() && latency_budget_ms > 0.0,
            "latency budget must be positive"
        );
        assert!(
            traffic_gb.is_finite() && traffic_gb >= 0.0,
            "traffic must be non-negative"
        );
        assert!(
            arrival_rate_rps.is_finite() && arrival_rate_rps > 0.0,
            "arrival rate must be positive"
        );
        Self {
            id,
            name: name.into(),
            vnfs,
            latency_budget_ms,
            traffic_gb,
            arrival_rate_rps,
        }
    }

    /// Chain length (number of VNFs).
    pub fn len(&self) -> usize {
        self.vnfs.len()
    }

    /// `true` if the chain has no VNFs (cannot occur for validated specs).
    pub fn is_empty(&self) -> bool {
        self.vnfs.is_empty()
    }

    /// Total resources one dedicated instance of each VNF would need.
    pub fn total_demand(&self, catalog: &VnfCatalog) -> Resources {
        self.vnfs.iter().fold(Resources::zero(), |acc, &id| {
            acc.plus(&catalog.get(id).demand)
        })
    }
}

/// An immutable set of chain specifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainCatalog {
    chains: Vec<ChainSpec>,
}

impl ChainCatalog {
    /// Builds a catalog, validating ids and VNF references.
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense or a chain references a VNF type outside
    /// `vnf_catalog`.
    pub fn new(chains: Vec<ChainSpec>, vnf_catalog: &VnfCatalog) -> Self {
        assert!(!chains.is_empty(), "catalog needs at least one chain");
        for (i, c) in chains.iter().enumerate() {
            assert_eq!(c.id.0, i, "chain ids must be dense 0..n in order");
            for &v in &c.vnfs {
                assert!(
                    v.0 < vnf_catalog.type_count(),
                    "chain {} references unknown {v}",
                    c.name
                );
            }
        }
        Self { chains }
    }

    /// The four service chains used across the experiments, spanning the
    /// canonical NFV use-cases (lengths 2–5, tight and loose SLAs).
    ///
    /// Requires [`VnfCatalog::standard`].
    pub fn standard(vnf_catalog: &VnfCatalog) -> Self {
        let id = |name: &str| {
            vnf_catalog
                .by_name(name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .id
        };
        Self::new(
            vec![
                ChainSpec::new(
                    ChainId(0),
                    "web-service",
                    vec![id("nat"), id("firewall"), id("load-balancer")],
                    60.0,
                    0.05,
                    20.0,
                ),
                ChainSpec::new(
                    ChainId(1),
                    "voip",
                    vec![id("nat"), id("firewall")],
                    30.0,
                    0.01,
                    10.0,
                ),
                ChainSpec::new(
                    ChainId(2),
                    "video-streaming",
                    vec![
                        id("nat"),
                        id("firewall"),
                        id("video-transcoder"),
                        id("proxy"),
                    ],
                    120.0,
                    0.50,
                    5.0,
                ),
                ChainSpec::new(
                    ChainId(3),
                    "enterprise-vpn",
                    vec![
                        id("nat"),
                        id("encryption-gw"),
                        id("firewall"),
                        id("wan-optimizer"),
                        id("ids"),
                    ],
                    150.0,
                    0.10,
                    8.0,
                ),
            ],
            vnf_catalog,
        )
    }

    /// All chains, ordered by id.
    pub fn chains(&self) -> &[ChainSpec] {
        &self.chains
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Chain by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, id: ChainId) -> &ChainSpec {
        &self.chains[id.0]
    }

    /// Longest chain length in the catalog.
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(ChainSpec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_chains_reference_valid_vnfs() {
        let vnfs = VnfCatalog::standard();
        let chains = ChainCatalog::standard(&vnfs);
        assert_eq!(chains.chain_count(), 4);
        assert_eq!(chains.max_chain_len(), 5);
        for c in chains.chains() {
            assert!(!c.is_empty());
            assert!(c.latency_budget_ms > 0.0);
        }
    }

    #[test]
    fn voip_has_tightest_budget() {
        let vnfs = VnfCatalog::standard();
        let chains = ChainCatalog::standard(&vnfs);
        let voip = chains.get(ChainId(1));
        for c in chains.chains() {
            assert!(voip.latency_budget_ms <= c.latency_budget_ms);
        }
    }

    #[test]
    fn total_demand_sums_vnfs() {
        let vnfs = VnfCatalog::standard();
        let chains = ChainCatalog::standard(&vnfs);
        let web = chains.get(ChainId(0));
        let d = web.total_demand(&vnfs);
        // nat (1) + firewall (2) + lb (2) = 5 vCPU.
        assert!((d.cpu - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "references unknown")]
    fn unknown_vnf_rejected() {
        let vnfs = VnfCatalog::standard();
        let bad = ChainSpec::new(ChainId(0), "bad", vec![VnfTypeId(99)], 10.0, 0.1, 1.0);
        let _ = ChainCatalog::new(vec![bad], &vnfs);
    }

    #[test]
    #[should_panic(expected = "at least one VNF")]
    fn empty_chain_rejected() {
        let _ = ChainSpec::new(ChainId(0), "empty", vec![], 10.0, 0.1, 1.0);
    }
}
