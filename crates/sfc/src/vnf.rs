//! VNF types: the catalog of network functions the operator can instantiate.

use edgenet::node::Resources;
use serde::{Deserialize, Serialize};

/// Identifier of a VNF type within a catalog (dense `0..type_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnfTypeId(pub usize);

impl std::fmt::Display for VnfTypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vnf{}", self.0)
    }
}

/// A VNF type: resource footprint and service characteristics of one
/// instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VnfType {
    /// Dense id within the catalog.
    pub id: VnfTypeId,
    /// Short name, e.g. `"firewall"`.
    pub name: String,
    /// Resources consumed by one instance.
    pub demand: Resources,
    /// Service rate of one instance, in requests per second (the M/M/1 μ).
    pub service_rate_rps: f64,
    /// Fixed packet-processing latency added per traversal, in ms
    /// (lookup/encryption work independent of queueing).
    pub base_processing_ms: f64,
}

impl VnfType {
    /// Creates a VNF type, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics if the service rate or base latency are not positive/finite.
    pub fn new(
        id: VnfTypeId,
        name: impl Into<String>,
        demand: Resources,
        service_rate_rps: f64,
        base_processing_ms: f64,
    ) -> Self {
        assert!(
            service_rate_rps.is_finite() && service_rate_rps > 0.0,
            "service rate must be positive"
        );
        assert!(
            base_processing_ms.is_finite() && base_processing_ms >= 0.0,
            "base latency must be non-negative"
        );
        Self {
            id,
            name: name.into(),
            demand,
            service_rate_rps,
            base_processing_ms,
        }
    }
}

/// An immutable catalog of VNF types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VnfCatalog {
    types: Vec<VnfType>,
}

impl VnfCatalog {
    /// Builds a catalog from types.
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense `0..n` or names repeat.
    pub fn new(types: Vec<VnfType>) -> Self {
        assert!(!types.is_empty(), "catalog needs at least one VNF type");
        for (i, t) in types.iter().enumerate() {
            assert_eq!(t.id.0, i, "VNF type ids must be dense 0..n in order");
            assert!(
                !types[..i].iter().any(|o| o.name == t.name),
                "duplicate VNF type name {}",
                t.name
            );
        }
        Self { types }
    }

    /// The standard eight-function catalog used across the experiments.
    ///
    /// Footprints and rates follow the conventional NFV sizing literature:
    /// lightweight L3/L4 functions (NAT, firewall) are cheap and fast; DPI
    /// and transcoding are heavy and slow.
    pub fn standard() -> Self {
        let mk = |i: usize, name: &str, cpu: f64, mem: f64, mu: f64, base: f64| {
            VnfType::new(VnfTypeId(i), name, Resources::new(cpu, mem), mu, base)
        };
        Self::new(vec![
            mk(0, "nat", 1.0, 1.0, 800.0, 0.05),
            mk(1, "firewall", 2.0, 2.0, 600.0, 0.10),
            mk(2, "load-balancer", 2.0, 4.0, 700.0, 0.08),
            mk(3, "ids", 4.0, 8.0, 300.0, 0.40),
            mk(4, "proxy", 2.0, 4.0, 500.0, 0.15),
            mk(5, "wan-optimizer", 4.0, 8.0, 400.0, 0.30),
            mk(6, "video-transcoder", 8.0, 16.0, 150.0, 1.50),
            mk(7, "encryption-gw", 4.0, 4.0, 350.0, 0.25),
        ])
    }

    /// All types, ordered by id.
    pub fn types(&self) -> &[VnfType] {
        &self.types
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Type by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, id: VnfTypeId) -> &VnfType {
        &self.types[id.0]
    }

    /// Looks a type up by name.
    pub fn by_name(&self, name: &str) -> Option<&VnfType> {
        self.types.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_is_well_formed() {
        let cat = VnfCatalog::standard();
        assert_eq!(cat.type_count(), 8);
        for (i, t) in cat.types().iter().enumerate() {
            assert_eq!(t.id.0, i);
            assert!(t.demand.cpu > 0.0);
            assert!(t.service_rate_rps > 0.0);
        }
    }

    #[test]
    fn lookup_by_name() {
        let cat = VnfCatalog::standard();
        let ids = cat.by_name("ids").expect("ids exists");
        assert_eq!(cat.get(ids.id).name, "ids");
        assert!(cat.by_name("nonexistent").is_none());
    }

    #[test]
    fn heavy_functions_cost_more() {
        let cat = VnfCatalog::standard();
        let nat = cat.by_name("nat").unwrap();
        let transcoder = cat.by_name("video-transcoder").unwrap();
        assert!(transcoder.demand.cpu > nat.demand.cpu);
        assert!(transcoder.service_rate_rps < nat.service_rate_rps);
    }

    #[test]
    #[should_panic(expected = "dense 0..n")]
    fn non_dense_ids_rejected() {
        let t = VnfType::new(VnfTypeId(5), "x", Resources::new(1.0, 1.0), 100.0, 0.1);
        let _ = VnfCatalog::new(vec![t]);
    }

    #[test]
    #[should_panic(expected = "duplicate VNF type name")]
    fn duplicate_names_rejected() {
        let a = VnfType::new(VnfTypeId(0), "x", Resources::new(1.0, 1.0), 100.0, 0.1);
        let b = VnfType::new(VnfTypeId(1), "x", Resources::new(1.0, 1.0), 100.0, 0.1);
        let _ = VnfCatalog::new(vec![a, b]);
    }
}
