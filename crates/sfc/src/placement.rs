//! Chain-to-instance assignments and end-to-end latency evaluation.

use crate::chain::ChainSpec;
use crate::delay::mm1_sojourn_ms;
use crate::instance::{InstanceId, InstancePool};
use crate::request::RequestId;
use crate::vnf::VnfCatalog;
use edgenet::node::NodeId;
use edgenet::routing::RoutingTable;
use serde::{Deserialize, Serialize};

/// The instances serving one admitted request, in chain order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainAssignment {
    /// The request being served.
    pub request: RequestId,
    /// One instance per chain position.
    pub instances: Vec<InstanceId>,
}

/// Errors from assignment validation or latency evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentError {
    /// Assignment length differs from the chain length.
    LengthMismatch {
        /// VNFs in the chain.
        expected: usize,
        /// Instances supplied.
        got: usize,
    },
    /// An instance id is not in the pool.
    UnknownInstance(InstanceId),
    /// Instance at `position` runs the wrong VNF type.
    TypeMismatch {
        /// Chain position.
        position: usize,
    },
    /// Some pair of consecutive nodes is not connected.
    Unroutable {
        /// Source of the failing hop.
        from: NodeId,
        /// Destination of the failing hop.
        to: NodeId,
    },
}

impl std::fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "assignment has {got} instances but chain needs {expected}"
                )
            }
            AssignmentError::UnknownInstance(id) => write!(f, "unknown instance {id}"),
            AssignmentError::TypeMismatch { position } => {
                write!(f, "instance at position {position} runs the wrong VNF type")
            }
            AssignmentError::Unroutable { from, to } => write!(f, "no route from {from} to {to}"),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Validates that `assignment` matches `chain` (length and VNF types).
///
/// # Errors
///
/// Returns the first [`AssignmentError`] encountered.
pub fn validate_assignment(
    assignment: &ChainAssignment,
    chain: &ChainSpec,
    pool: &InstancePool,
) -> Result<(), AssignmentError> {
    if assignment.instances.len() != chain.len() {
        return Err(AssignmentError::LengthMismatch {
            expected: chain.len(),
            got: assignment.instances.len(),
        });
    }
    for (pos, (&inst_id, &expected_type)) in assignment
        .instances
        .iter()
        .zip(chain.vnfs.iter())
        .enumerate()
    {
        let inst = pool
            .get(inst_id)
            .ok_or(AssignmentError::UnknownInstance(inst_id))?;
        if inst.vnf_type != expected_type {
            return Err(AssignmentError::TypeMismatch { position: pos });
        }
    }
    Ok(())
}

/// Latency breakdown of one chain traversal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Sum of network latencies between consecutive hops (ms).
    pub network_ms: f64,
    /// Sum of fixed per-VNF processing latencies (ms).
    pub processing_ms: f64,
    /// Sum of M/M/1 queueing sojourn times (ms); infinite if any instance
    /// is overloaded.
    pub queueing_ms: f64,
}

impl LatencyBreakdown {
    /// Total end-to-end latency (ms).
    pub fn total_ms(&self) -> f64 {
        self.network_ms + self.processing_ms + self.queueing_ms
    }
}

/// Computes the end-to-end latency of traversing `assignment` starting at
/// `source`: network transfer source → inst₁ → … → instₙ plus per-instance
/// processing and queueing.
///
/// The returned queueing term reflects each instance's *current* λ; callers
/// evaluating a hypothetical placement should add the flow first or use
/// [`hypothetical_latency_ms`].
///
/// # Errors
///
/// Returns [`AssignmentError`] if validation fails or a hop is unroutable.
pub fn assignment_latency(
    assignment: &ChainAssignment,
    chain: &ChainSpec,
    source: NodeId,
    pool: &InstancePool,
    catalog: &VnfCatalog,
    routes: &RoutingTable,
) -> Result<LatencyBreakdown, AssignmentError> {
    validate_assignment(assignment, chain, pool)?;
    let mut network = 0.0;
    let mut processing = 0.0;
    let mut queueing = 0.0;
    let mut at = source;
    for &inst_id in &assignment.instances {
        let inst = pool.get(inst_id).expect("validated");
        let hop = routes.latency_ms(at, inst.node);
        if !hop.is_finite() {
            return Err(AssignmentError::Unroutable {
                from: at,
                to: inst.node,
            });
        }
        network += hop;
        let vnf = catalog.get(inst.vnf_type);
        processing += vnf.base_processing_ms;
        queueing += mm1_sojourn_ms(vnf.service_rate_rps, inst.lambda_rps);
        at = inst.node;
    }
    Ok(LatencyBreakdown {
        network_ms: network,
        processing_ms: processing,
        queueing_ms: queueing,
    })
}

/// Latency of a *hypothetical* node sequence for `chain` from `source`,
/// assuming fresh instances at the given per-position current loads
/// (`lambda_at[pos]` is the λ the serving instance would have *after*
/// admitting this flow).
///
/// Used by placement policies to score candidate nodes without mutating
/// the pool.
///
/// # Panics
///
/// Panics if `nodes.len() != chain.len()` or `lambda_at.len() != chain.len()`.
pub fn hypothetical_latency_ms(
    chain: &ChainSpec,
    source: NodeId,
    nodes: &[NodeId],
    lambda_at: &[f64],
    catalog: &VnfCatalog,
    routes: &RoutingTable,
) -> f64 {
    assert_eq!(nodes.len(), chain.len(), "node sequence length mismatch");
    assert_eq!(
        lambda_at.len(),
        chain.len(),
        "lambda sequence length mismatch"
    );
    let mut total = 0.0;
    let mut at = source;
    for (pos, (&node, &lambda)) in nodes.iter().zip(lambda_at.iter()).enumerate() {
        let hop = routes.latency_ms(at, node);
        if !hop.is_finite() {
            return f64::INFINITY;
        }
        total += hop;
        let vnf = catalog.get(chain.vnfs[pos]);
        total += vnf.base_processing_ms + mm1_sojourn_ms(vnf.service_rate_rps, lambda);
        at = node;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainCatalog, ChainId};
    use edgenet::topology::TopologyBuilder;

    struct Fixture {
        pool: InstancePool,
        catalog: VnfCatalog,
        chains: ChainCatalog,
        routes: RoutingTable,
    }

    fn fixture() -> Fixture {
        let catalog = VnfCatalog::standard();
        let chains = ChainCatalog::standard(&catalog);
        let topo = TopologyBuilder::default().metro(4);
        let routes = RoutingTable::build(&topo);
        Fixture {
            pool: InstancePool::new(),
            catalog,
            chains,
            routes,
        }
    }

    #[test]
    fn valid_assignment_passes() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone(); // voip: nat, firewall
        let i0 = f.pool.spawn(chain.vnfs[0], NodeId(0), 0);
        let i1 = f.pool.spawn(chain.vnfs[1], NodeId(1), 0);
        let a = ChainAssignment {
            request: RequestId(1),
            instances: vec![i0, i1],
        };
        assert!(validate_assignment(&a, &chain, &f.pool).is_ok());
    }

    #[test]
    fn type_mismatch_detected() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let i0 = f.pool.spawn(chain.vnfs[1], NodeId(0), 0); // wrong order
        let i1 = f.pool.spawn(chain.vnfs[0], NodeId(1), 0);
        let a = ChainAssignment {
            request: RequestId(1),
            instances: vec![i0, i1],
        };
        assert_eq!(
            validate_assignment(&a, &chain, &f.pool),
            Err(AssignmentError::TypeMismatch { position: 0 })
        );
    }

    #[test]
    fn length_mismatch_detected() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let i0 = f.pool.spawn(chain.vnfs[0], NodeId(0), 0);
        let a = ChainAssignment {
            request: RequestId(1),
            instances: vec![i0],
        };
        assert!(matches!(
            validate_assignment(&a, &chain, &f.pool),
            Err(AssignmentError::LengthMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn latency_sums_network_processing_queueing() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let i0 = f.pool.spawn(chain.vnfs[0], NodeId(0), 0);
        let i1 = f.pool.spawn(chain.vnfs[1], NodeId(1), 0);
        let a = ChainAssignment {
            request: RequestId(1),
            instances: vec![i0, i1],
        };
        let lat =
            assignment_latency(&a, &chain, NodeId(2), &f.pool, &f.catalog, &f.routes).unwrap();
        assert!(lat.network_ms > 0.0); // source 2 -> node 0 -> node 1
        assert!(lat.processing_ms > 0.0);
        assert!(lat.queueing_ms > 0.0); // idle queues still have service time
        let expected_net =
            f.routes.latency_ms(NodeId(2), NodeId(0)) + f.routes.latency_ms(NodeId(0), NodeId(1));
        assert!((lat.network_ms - expected_net).abs() < 1e-9);
        assert!(lat.total_ms() > lat.network_ms);
    }

    #[test]
    fn colocated_chain_has_zero_network_latency() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let i0 = f.pool.spawn(chain.vnfs[0], NodeId(0), 0);
        let i1 = f.pool.spawn(chain.vnfs[1], NodeId(0), 0);
        let a = ChainAssignment {
            request: RequestId(1),
            instances: vec![i0, i1],
        };
        let lat =
            assignment_latency(&a, &chain, NodeId(0), &f.pool, &f.catalog, &f.routes).unwrap();
        assert_eq!(lat.network_ms, 0.0);
    }

    #[test]
    fn loaded_instance_increases_latency() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let i0 = f.pool.spawn(chain.vnfs[0], NodeId(0), 0);
        let i1 = f.pool.spawn(chain.vnfs[1], NodeId(0), 0);
        let a = ChainAssignment {
            request: RequestId(1),
            instances: vec![i0, i1],
        };
        let idle =
            assignment_latency(&a, &chain, NodeId(0), &f.pool, &f.catalog, &f.routes).unwrap();
        // Load the NAT instance near saturation.
        let mu = f.catalog.get(chain.vnfs[0]).service_rate_rps;
        f.pool.add_flow(i0, 0.95 * mu).unwrap();
        let loaded =
            assignment_latency(&a, &chain, NodeId(0), &f.pool, &f.catalog, &f.routes).unwrap();
        assert!(loaded.queueing_ms > idle.queueing_ms * 5.0);
    }

    #[test]
    fn hypothetical_matches_actual_for_fresh_instances() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(0)).clone(); // 3 VNFs
        let nodes = vec![NodeId(0), NodeId(1), NodeId(0)];
        let lambdas = vec![0.0, 0.0, 0.0];
        let hypo =
            hypothetical_latency_ms(&chain, NodeId(2), &nodes, &lambdas, &f.catalog, &f.routes);
        let ids: Vec<InstanceId> = chain
            .vnfs
            .iter()
            .zip(nodes.iter())
            .map(|(&v, &n)| f.pool.spawn(v, n, 0))
            .collect();
        let a = ChainAssignment {
            request: RequestId(0),
            instances: ids,
        };
        let actual = assignment_latency(&a, &chain, NodeId(2), &f.pool, &f.catalog, &f.routes)
            .unwrap()
            .total_ms();
        assert!((hypo - actual).abs() < 1e-9);
    }

    #[test]
    fn overloaded_hypothetical_is_infinite() {
        let f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let mu = f.catalog.get(chain.vnfs[0]).service_rate_rps;
        let lat = hypothetical_latency_ms(
            &chain,
            NodeId(0),
            &[NodeId(0), NodeId(0)],
            &[mu + 1.0, 0.0],
            &f.catalog,
            &f.routes,
        );
        assert!(lat.is_infinite());
    }
}
