//! Queueing-theoretic processing-delay model.
//!
//! Each VNF instance is modelled as an M/M/1 queue: requests arrive at rate
//! λ (sum over flows assigned to the instance) and are served at rate μ
//! (the VNF type's service rate). The mean sojourn time is `1 / (μ − λ)`
//! for λ < μ and unbounded otherwise.

/// Mean M/M/1 sojourn time in milliseconds for service rate `mu_rps` and
/// arrival rate `lambda_rps` (both in requests/second).
///
/// Returns `f64::INFINITY` when `lambda >= mu` (overloaded queue).
///
/// # Panics
///
/// Panics if `mu_rps <= 0` or `lambda_rps < 0`.
pub fn mm1_sojourn_ms(mu_rps: f64, lambda_rps: f64) -> f64 {
    assert!(mu_rps > 0.0, "service rate must be positive, got {mu_rps}");
    assert!(
        lambda_rps >= 0.0,
        "arrival rate must be non-negative, got {lambda_rps}"
    );
    if lambda_rps >= mu_rps {
        f64::INFINITY
    } else {
        1000.0 / (mu_rps - lambda_rps)
    }
}

/// Queue utilization ρ = λ/μ, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `mu_rps <= 0` or `lambda_rps < 0`.
pub fn mm1_utilization(mu_rps: f64, lambda_rps: f64) -> f64 {
    assert!(mu_rps > 0.0, "service rate must be positive");
    assert!(lambda_rps >= 0.0, "arrival rate must be non-negative");
    (lambda_rps / mu_rps).min(1.0)
}

/// `true` if adding `extra_lambda_rps` keeps the queue stable below the
/// given maximum utilization (e.g. `0.95` leaves headroom against bursts).
///
/// # Panics
///
/// Panics if rates are invalid or `max_utilization ∉ (0, 1]`.
pub fn admits_load(
    mu_rps: f64,
    current_lambda_rps: f64,
    extra_lambda_rps: f64,
    max_utilization: f64,
) -> bool {
    assert!(mu_rps > 0.0, "service rate must be positive");
    assert!(
        current_lambda_rps >= 0.0 && extra_lambda_rps >= 0.0,
        "rates must be non-negative"
    );
    assert!(
        max_utilization > 0.0 && max_utilization <= 1.0,
        "max utilization must be in (0,1]"
    );
    current_lambda_rps + extra_lambda_rps <= mu_rps * max_utilization
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_sojourn_is_service_time() {
        // μ = 100/s → mean service time 10 ms.
        assert!((mm1_sojourn_ms(100.0, 0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sojourn_grows_with_load() {
        let low = mm1_sojourn_ms(100.0, 10.0);
        let mid = mm1_sojourn_ms(100.0, 50.0);
        let high = mm1_sojourn_ms(100.0, 90.0);
        assert!(low < mid && mid < high);
        // At 90% load: 1000/(100-90) = 100 ms.
        assert!((high - 100.0).abs() < 1e-9);
    }

    #[test]
    fn overload_is_infinite() {
        assert!(mm1_sojourn_ms(100.0, 100.0).is_infinite());
        assert!(mm1_sojourn_ms(100.0, 150.0).is_infinite());
    }

    #[test]
    fn utilization_clamped() {
        assert!((mm1_utilization(100.0, 50.0) - 0.5).abs() < 1e-9);
        assert_eq!(mm1_utilization(100.0, 500.0), 1.0);
    }

    #[test]
    fn admits_load_respects_headroom() {
        assert!(admits_load(100.0, 50.0, 40.0, 0.95)); // 90 <= 95
        assert!(!admits_load(100.0, 50.0, 50.0, 0.95)); // 100 > 95
        assert!(admits_load(100.0, 0.0, 95.0, 0.95)); // boundary inclusive
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn zero_mu_panics() {
        let _ = mm1_sojourn_ms(0.0, 0.0);
    }
}
