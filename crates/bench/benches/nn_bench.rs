//! Micro-benchmarks for the neural-network substrate: forward and
//! forward+backward passes at the DQN's working sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let config = MlpConfig::new(64, &[128, 128], 10);
    let net = Mlp::new(&config, &mut rng);
    let batch = Matrix::from_fn(32, 64, |r, c| ((r * 31 + c) % 17) as f32 / 17.0);
    c.bench_function("mlp_forward_32x64_128x128x10", |b| {
        b.iter(|| black_box(net.forward(black_box(&batch))))
    });
    let single = Matrix::from_fn(1, 64, |_, c| (c % 13) as f32 / 13.0);
    c.bench_function("mlp_forward_single", |b| {
        b.iter(|| black_box(net.forward(black_box(&single))))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let config = MlpConfig::new(64, &[128, 128], 10);
    let mut model = TrainableMlp::new(
        &config,
        OptimizerConfig::adam(1e-3),
        Loss::Huber(1.0),
        Some(10.0),
        &mut rng,
    );
    let x = Matrix::from_fn(32, 64, |r, c| ((r * 7 + c) % 19) as f32 / 19.0);
    let y = Matrix::from_fn(32, 10, |r, c| ((r + c) % 5) as f32 / 5.0);
    c.bench_function("mlp_train_batch32", |b| {
        b.iter(|| black_box(model.step(&x, &y)))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(128, 128, |r, c| ((r * c) % 23) as f32 / 23.0);
    let bm = Matrix::from_fn(128, 128, |r, c| ((r + c) % 29) as f32 / 29.0);
    c.bench_function("matmul_128x128", |b| {
        b.iter(|| black_box(a.matmul(black_box(&bm))))
    });
}

criterion_group!(benches, bench_forward, bench_train_step, bench_matmul);
criterion_main!(benches);
