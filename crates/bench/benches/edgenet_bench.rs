//! Micro-benchmarks for the network substrate: routing-table builds and
//! lookups at experiment topology sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgenet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_routing(c: &mut Criterion) {
    let metro = TopologyBuilder::default().metro(16);
    c.bench_function("routing_build_metro16", |b| {
        b.iter(|| black_box(RoutingTable::build(black_box(&metro))))
    });
    let mut rng = StdRng::seed_from_u64(0);
    let wax = TopologyBuilder::default().waxman(64, 600.0, 0.7, 0.3, &mut rng);
    c.bench_function("routing_build_waxman64", |b| {
        b.iter(|| black_box(RoutingTable::build(black_box(&wax))))
    });
    let table = RoutingTable::build(&metro);
    c.bench_function("routing_lookup", |b| {
        b.iter(|| black_box(table.latency_ms(NodeId(0), NodeId(12))))
    });
    c.bench_function("routing_path_reconstruction", |b| {
        b.iter(|| black_box(table.path(NodeId(0), NodeId(12))))
    });
}

fn bench_capacity(c: &mut Criterion) {
    let topo = TopologyBuilder::default().metro(16);
    let mut ledger = CapacityLedger::for_topology(&topo);
    let demand = Resources::new(2.0, 4.0);
    c.bench_function("ledger_alloc_release", |b| {
        b.iter(|| {
            ledger.allocate(NodeId(3), &demand).unwrap();
            ledger.release(NodeId(3), &demand).unwrap();
        })
    });
}

criterion_group!(benches, bench_routing, bench_capacity);
criterion_main!(benches);
