//! End-to-end simulator throughput: slots per second under a heuristic
//! policy, and the per-decision cost of the full context build.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use mano::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc::chain::ChainId;
use sfc::request::{Request, RequestId};

fn bench_slot_throughput(c: &mut Criterion) {
    let mut scenario = Scenario::default_metro().with_arrival_rate(6.0);
    scenario.horizon_slots = 8;
    c.bench_function("sim_run_8slots_first_fit", |b| {
        b.iter_batched(
            || Simulation::new(&scenario, RewardConfig::default()),
            |mut sim| {
                let mut policy = FirstFitPolicy;
                black_box(sim.run(&mut policy, 0))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_decision_context(c: &mut Criterion) {
    let scenario = Scenario::default_metro();
    let sim = Simulation::new(&scenario, RewardConfig::default());
    let chain = sim.chains.get(ChainId(2)).clone();
    let request = Request::new(RequestId(0), ChainId(2), edgenet::node::NodeId(0), 0, 5);
    c.bench_function("decision_context_build", |b| {
        b.iter(|| {
            black_box(sim.decision_context(
                black_box(&request),
                black_box(&chain),
                1,
                edgenet::node::NodeId(2),
                3.0,
            ))
        })
    });
}

fn bench_place_request(c: &mut Criterion) {
    let scenario = Scenario::default_metro();
    c.bench_function("place_request_episode", |b| {
        b.iter_batched(
            || {
                (
                    Simulation::new(&scenario, RewardConfig::default()),
                    StdRng::seed_from_u64(7),
                )
            },
            |(mut sim, mut rng)| {
                let mut policy = GreedyLatencyPolicy;
                let req = Request::new(RequestId(1), ChainId(0), edgenet::node::NodeId(1), 0, 5);
                black_box(sim.place_request(&req, &mut policy, &mut rng))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_slot_throughput,
    bench_decision_context,
    bench_place_request
);
criterion_main!(benches);
