//! Micro-benchmarks for the RL toolkit: replay sampling and DQN learn
//! steps — the training loop's hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::prelude::*;

fn filled_transition(i: usize) -> Transition {
    Transition::new(
        vec![(i % 7) as f32; 29],
        i % 4,
        0.5,
        vec![(i % 5) as f32; 29],
        i.is_multiple_of(9),
    )
}

fn bench_replay(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut uniform = UniformReplay::new(50_000);
    let mut per = PrioritizedReplay::new(50_000, PerConfig::default());
    for i in 0..50_000 {
        uniform.push(filled_transition(i));
        per.push(filled_transition(i));
    }
    c.bench_function("uniform_replay_sample32", |b| {
        b.iter(|| black_box(uniform.sample(32, &mut rng)))
    });
    c.bench_function("prioritized_replay_sample32", |b| {
        b.iter(|| black_box(per.sample(32, &mut rng)))
    });
}

fn bench_dqn_learn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let config = DqnConfig {
        network: QNetworkConfig::Standard {
            hidden: vec![128, 128],
        },
        replay_capacity: 10_000,
        batch_size: 32,
        learn_start: 64,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(config, 29, 10, &mut rng);
    for i in 0..1_000 {
        agent.observe(filled_transition(i), &mut rng);
    }
    c.bench_function("dqn_learn_step_batch32", |b| {
        b.iter(|| black_box(agent.learn(&mut rng)))
    });
    let state = vec![0.3f32; 29];
    let mask = vec![true; 10];
    c.bench_function("dqn_act_greedy", |b| {
        b.iter(|| black_box(agent.act_greedy(black_box(&state), black_box(&mask))))
    });
}

criterion_group!(benches, bench_replay, bench_dqn_learn);
criterion_main!(benches);
