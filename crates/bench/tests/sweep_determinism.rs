//! The sharded sweep's core guarantee, tested end to end in one process:
//! for ANY partition of a grid's cells into shard fragments — any shard
//! count, any per-fragment cell order, any fragment completion order —
//! the merged report's canonical JSON is byte-identical to the
//! single-process `ExperimentGrid::run` output.
//!
//! The process-spawning path (real `sweep_worker` fleets) is exercised by
//! `verify.sh sweep-smoke`, which byte-diffs the merged file on disk;
//! here the same plan/execute/merge pipeline runs in-process so the
//! property can be checked across many partitions quickly.

use exper::prelude::*;
use mano::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::{Config, TestCaseError};
use rand::rngs::StdRng;
use rand::Rng;
use sweep::prelude::*;

/// Canonical-form bytes of a report — the comparison currency of the
/// whole protocol.
fn canonical_bytes(report: &BenchReport) -> String {
    serde_json::to_string_pretty(&report.canonical_json())
}

/// Shards a grid through the real plan → run_cells → fragment → merge
/// pipeline and returns the merged report.
fn shard_and_merge(grid: &ExperimentGrid, shards: usize) -> BenchReport {
    let plans = plan(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        shards,
    );
    let fragments: Vec<ShardFragment> = plans
        .iter()
        .map(|p| {
            fragment(
                grid.grid_name(),
                grid.grid_fingerprint(),
                p.shard_id,
                p.shard_of,
                grid.run_cells(&p.cell_indices()),
            )
        })
        .collect();
    merge_fragments(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        &fragments,
    )
    .expect("complete fragment set merges")
}

/// Pins the acceptance criterion on the registry figure grids: worker
/// counts {1, 2, 4} reproduce the single-process bytes exactly.
fn assert_grid_shards_identically(name: &str) {
    std::env::set_var("FAST", "1");
    let grid = bench::sweep_grids::build_sweep_grid(name)
        .expect("registry grid")
        .threads(2);
    let reference = canonical_bytes(&grid.run());
    for shards in [1, 2, 4] {
        let merged = canonical_bytes(&shard_and_merge(&grid, shards));
        assert_eq!(
            merged, reference,
            "{name} sharded {shards} ways must be byte-identical to one process"
        );
    }
}

#[test]
fn fig2_load_merges_byte_identically_for_1_2_4_shards() {
    assert_grid_shards_identically("fig2_load");
}

#[test]
fn fig6_chains_merges_byte_identically_for_1_2_4_shards() {
    assert_grid_shards_identically("fig6_chains");
}

/// A tiny two-scenario grid for the partition property: cheap enough to
/// run once and then merge hundreds of ways.
fn tiny_grid() -> ExperimentGrid {
    let grid = ExperimentGrid::new("tiny")
        .scenario("a", 1.0, Scenario::small_test())
        .scenario("b", 2.0, Scenario::small_test())
        .policy("first-fit", || Box::new(FirstFitPolicy))
        .policy("cloud-only", || Box::new(CloudOnlyPolicy))
        .seeds(&[3, 7, 11])
        .threads(2);
    let fp = grid.auto_fingerprint();
    grid.fingerprint(fp)
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

#[test]
fn any_partition_any_order_merges_byte_identically() {
    let grid = tiny_grid();
    let reference = grid.run();
    let reference_bytes = canonical_bytes(&reference);
    let n = grid.cell_count();
    let indexed: Vec<(usize, BenchCell)> = reference.cells.iter().cloned().enumerate().collect();

    proptest::test_runner::run(
        Config::with_cases(64),
        "any_partition_merges_identically",
        |rng| {
            // An arbitrary (not necessarily contiguous, not necessarily
            // balanced) assignment of every cell to one of 1..=5 shards.
            let shard_of = (1usize..=5).generate(rng);
            let mut shards: Vec<Vec<(usize, BenchCell)>> = vec![Vec::new(); shard_of];
            for (index, cell) in &indexed {
                shards[rng.gen_range(0..shard_of)].push((*index, cell.clone()));
            }
            // Any order inside each fragment, any completion order.
            let mut fragments: Vec<ShardFragment> = shards
                .into_iter()
                .enumerate()
                .map(|(shard_id, mut cells)| {
                    shuffle(&mut cells, rng);
                    fragment(
                        grid.grid_name(),
                        grid.grid_fingerprint(),
                        shard_id,
                        shard_of,
                        cells,
                    )
                })
                .collect();
            shuffle(&mut fragments, rng);

            let merged = merge_fragments(grid.grid_name(), grid.grid_fingerprint(), n, &fragments)
                .map_err(|e| TestCaseError::fail(format!("merge refused: {e}")))?;
            let merged_bytes = canonical_bytes(&merged);
            if merged_bytes != reference_bytes {
                return Err(TestCaseError::fail(format!(
                    "partition into {shard_of} shards changed the canonical bytes"
                )));
            }
            Ok(())
        },
    );
}

/// The disk round-trip preserves the bytes too: write fragments, load
/// them back, merge, compare — the exact worker/driver handoff.
#[test]
fn fragments_survive_the_disk_roundtrip_byte_identically() {
    let grid = tiny_grid();
    let reference_bytes = canonical_bytes(&grid.run());
    let dir = std::env::temp_dir().join(format!("sweep_det_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let plans = plan(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        3,
    );
    for p in &plans {
        fragment(
            grid.grid_name(),
            grid.grid_fingerprint(),
            p.shard_id,
            p.shard_of,
            grid.run_cells(&p.cell_indices()),
        )
        .write_to(&dir)
        .expect("write fragment");
    }
    let fragments: Vec<ShardFragment> = (0..3)
        .map(|k| {
            load_fragment(&shards_dir(&dir).join(fragment_file_name(grid.grid_name(), k, 3)))
                .expect("fragment loads back")
        })
        .collect();
    let merged = merge_fragments(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        &fragments,
    )
    .expect("merge");
    assert_eq!(canonical_bytes(&merged), reference_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
