//! Checked-in scenario manifests: the in-code definitions behind the
//! JSON files under `manifests/`, plus the loading and training plumbing
//! figure binaries and the search driver share.
//!
//! The JSON files are the source of truth the binaries load at runtime;
//! the in-code builders here exist so tests can pin the files (a drifted
//! file fails [`crate::manifests`]' golden test instead of silently
//! changing an experiment), and so the files can be regenerated
//! mechanically after an intentional edit.

use crate::{default_passes, drl_default, factory_of, fast_mode};
use exper::prelude::*;
use mano::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

/// Every manifest name checked in under `manifests/`.
pub fn checked_in_manifest_names() -> &'static [&'static str] {
    &["fig10_reward_weights", "smoke"]
}

/// The directory holding checked-in manifest JSON files
/// (`MANIFEST_DIR` env override, default `manifests`).
pub fn manifest_dir() -> PathBuf {
    std::env::var_os("MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("manifests"))
}

/// Loads a checked-in manifest by name from [`manifest_dir`].
///
/// # Panics
///
/// Panics with the parse/IO error when the file is missing or invalid —
/// a missing manifest is a broken checkout, not a recoverable state.
pub fn load_checked_manifest(name: &str) -> ScenarioManifest {
    ScenarioManifest::load(&manifest_dir(), name)
        .unwrap_or_else(|e| panic!("load manifest `{name}`: {e}"))
}

/// The in-code definition of `manifests/fig10_reward_weights.json`: the
/// reward-weight frontier. Five paired (α, β) points along the
/// latency↔cost diagonal, one trained DRL column per point, evaluated at
/// the λ=8 operating point.
pub fn fig10_manifest() -> ScenarioManifest {
    let mut manifest = ScenarioManifest::new(
        "fig10_reward_weights",
        ManifestBase::bench(8.0),
        SweepSpec::ArrivalRate {
            values: FastScaled::same(Axis::single(8.0)),
        },
    )
    .reward(RewardAxes {
        alpha: Axis::List(vec![4.0, 2.0, 1.0, 0.5, 0.25]),
        beta: Axis::List(vec![0.25, 0.5, 1.0, 2.0, 4.0]),
        paired: true,
    })
    .policy(PolicySpec::Trained {
        label: "a{alpha}-b{beta}".into(),
    });
    // Screen on a seed prefix, promote the top 3 of 5 weightings: 19 of
    // 25 full-mode runs (8 of 10 under FAST).
    manifest.search = SearchParams {
        screen_seeds: FastScaled { full: 2, fast: 1 },
        promote_fraction: 0.6,
    };
    manifest
}

/// The in-code definition of `manifests/smoke.json`: a tiny two-axis
/// (arrival rate × baseline roster) manifest for CI smoke runs — small
/// enough to search twice in seconds, rich enough to exercise screening,
/// promotion and the byte-determinism contract.
pub fn smoke_manifest() -> ScenarioManifest {
    let mut base = ManifestBase::bench(4.0);
    base.topology = TopologyFamily::Metro { sites: 4 };
    base.edge_capacity = None;
    base.horizon_slots = FastScaled { full: 60, fast: 24 };
    let mut manifest = ScenarioManifest::new(
        "smoke",
        base,
        SweepSpec::ArrivalRate {
            values: FastScaled::same(Axis::List(vec![2.0, 6.0])),
        },
    )
    .policy(PolicySpec::Baseline("first-fit".into()))
    .policy(PolicySpec::Baseline("greedy-latency".into()))
    .policy(PolicySpec::Baseline("cloud-only".into()))
    .seeds(FastScaled {
        full: vec![101, 102, 103],
        fast: vec![101, 102],
    });
    manifest.search = SearchParams {
        screen_seeds: FastScaled { full: 2, fast: 1 },
        promote_fraction: 0.5,
    };
    manifest
}

/// The in-code definition behind a checked-in manifest name, or `None`.
pub fn checked_in_manifest(name: &str) -> Option<ScenarioManifest> {
    match name {
        "fig10_reward_weights" => Some(fig10_manifest()),
        "smoke" => Some(smoke_manifest()),
        _ => None,
    }
}

/// Trains every `Trained` column of a manifest concurrently (one
/// `train_drl` per (reward point, column), fanned out on the worker
/// pool) and returns a trainer closure for
/// [`ExpandedPoint::grid_with`] / `SearchDriver::run_with` that hands
/// out the pre-trained policies by label.
///
/// Training happens up front because the expansion consumes trained
/// policies point by point — training lazily inside the closure would
/// serialize the most expensive phase.
pub fn pretrained_trainer(
    manifest: &ScenarioManifest,
) -> impl FnMut(&TrainRequest) -> PolicyFactory {
    let expansion = manifest.expand(fast_mode());
    let mut specs: Vec<(String, RewardConfig, Scenario)> = Vec::new();
    for point in &expansion.points {
        for policy in &point.policies {
            if let ResolvedPolicy::Trained { label } = policy {
                let scenario = point.scenarios[0].scenario.clone();
                specs.push((label.clone(), point.reward, scenario));
            }
        }
    }
    if !specs.is_empty() {
        eprintln!(
            "[manifest] training {} column(s) on {} threads…",
            specs.len(),
            thread_count()
        );
    }
    let trained = parallel_map(&specs, |_, (label, reward, scenario)| {
        let t = train_drl(scenario, *reward, drl_default(), default_passes().min(6));
        eprintln!("[manifest] {label}: trained");
        t
    });
    let mut by_label: HashMap<String, TrainedDrl> = specs
        .into_iter()
        .map(|(label, _, _)| label)
        .zip(trained)
        .collect();
    move |req: &TrainRequest| {
        let t = by_label
            .remove(req.label)
            .unwrap_or_else(|| panic!("no pre-trained policy for label `{}`", req.label));
        factory_of(t.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in JSON files are byte-for-byte the serialization of
    /// the in-code builders. A mismatch means someone edited one side
    /// only; regenerate with
    /// `cargo run --bin search_drive -- --write-manifests`.
    #[test]
    fn checked_in_files_match_in_code_definitions() {
        for &name in checked_in_manifest_names() {
            let in_code = checked_in_manifest(name).expect("name is registered");
            assert_eq!(in_code.name, name);
            let path = manifest_dir().join(format!("{name}.json"));
            // Tests run with the crate as cwd; walk up to the workspace
            // root where manifests/ lives.
            let path = if path.exists() {
                path
            } else {
                PathBuf::from("..").join("..").join(&path)
            };
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let on_disk = ScenarioManifest::parse(&text).expect("checked-in manifest parses");
            assert_eq!(
                on_disk, in_code,
                "manifests/{name}.json drifted from its in-code definition"
            );
            assert_eq!(
                text,
                serde_json::to_string_pretty(&in_code.to_json()) + "\n",
                "manifests/{name}.json is not the canonical serialization"
            );
        }
    }

    #[test]
    fn fig10_manifest_reproduces_the_hand_picked_lattice() {
        let expansion = fig10_manifest().expand(false);
        assert_eq!(expansion.points.len(), 5);
        let labels: Vec<&str> = expansion
            .points
            .iter()
            .map(|p| p.policies[0].label())
            .collect();
        assert_eq!(
            labels,
            vec!["a4-b0.25", "a2-b0.5", "a1-b1", "a0.5-b2", "a0.25-b4"],
            "column labels must match the pre-manifest fig10 binary"
        );
        assert_eq!(expansion.points[0].scenarios[0].label, "lambda=8");
        assert_eq!(expansion.points[0].seeds, vec![101, 102, 103, 104, 105]);
        assert!(expansion.points.iter().all(|p| p.needs_training()));
    }

    #[test]
    fn smoke_manifest_is_baseline_only_and_tiny() {
        let expansion = smoke_manifest().expand(true);
        assert_eq!(expansion.points.len(), 1);
        let point = &expansion.points[0];
        assert!(!point.needs_training());
        assert_eq!(point.scenarios.len(), 2);
        assert_eq!(point.policies.len(), 3);
        assert!(point.scenarios[0].scenario.horizon_slots <= 24);
    }
}
