//! The hotpath trend gate: turns the soft previous-run comparison into a
//! CI-enforceable series.
//!
//! Each tracked throughput series (decisions/sec, batched decisions/sec,
//! train-steps/sec) carries a tiny state across runs — the last accepted
//! *baseline* rate plus the current *regression streak*. A single run
//! below the threshold is machine noise and must never fail CI (soft-log
//! only); the gate fails only when the regression *sustains*, i.e. the
//! configured number of consecutive runs all land below the baseline.
//! Any run at or above the threshold re-baselines to the *decayed
//! maximum* of its rate and the old baseline (see [`BASELINE_DECAY`]), so
//! the gate tracks genuine improvements without letting either a lucky
//! spike pin the baseline high forever or a staircase of tolerated dips
//! ratchet it down.
//!
//! The state round-trips through a small JSON document that CI restores
//! from the previous run via `actions/cache` (per-branch key with a
//! fallback) and re-saves after the gate runs.

use std::collections::BTreeMap;
use std::path::Path;

/// Ratio under which a run counts as regressed (`current / baseline`):
/// 0.8 = "more than 20% slower".
pub const DEFAULT_REGRESSION_RATIO: f64 = 0.8;

/// Consecutive regressed runs needed before the gate fails the job.
pub const DEFAULT_FAIL_AFTER: u32 = 2;

/// Per-run decay of the accepted baseline on an OK run: the new baseline
/// is `max(current, baseline * DECAY)`, a *decayed maximum*. Taking the
/// plain max would let one lucky noise spike pin the baseline high
/// forever; taking `current` would let a staircase of (say) 15% losses
/// ratchet the baseline down without ever tripping the threshold. The
/// decayed max resists both: spikes fade at 5% per run, while the
/// baseline falls far slower than any compounding real regression, whose
/// cumulative ratio therefore still crosses the threshold.
pub const BASELINE_DECAY: f64 = 0.95;

/// Per-series state carried between runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendState {
    /// Last accepted rate: the reference the next run is compared to.
    pub baseline: f64,
    /// Consecutive runs below the threshold so far.
    pub streak: u32,
}

/// Outcome of feeding one run's rate into the gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrendVerdict {
    /// No prior state — this run starts the series.
    FirstRun,
    /// At or above the threshold; the baseline advanced to this run.
    Ok {
        /// `current / previous baseline`.
        ratio: f64,
    },
    /// Below the threshold but not yet sustained: soft-log only.
    SoftRegression {
        /// `current / baseline`.
        ratio: f64,
        /// Regressed runs so far (including this one).
        streak: u32,
    },
    /// Below the threshold for `streak` consecutive runs: fail the job.
    SustainedRegression {
        /// `current / baseline`.
        ratio: f64,
        /// Regressed runs so far (including this one).
        streak: u32,
    },
}

impl TrendVerdict {
    /// `true` when the gate should fail the job.
    pub fn is_failure(&self) -> bool {
        matches!(self, TrendVerdict::SustainedRegression { .. })
    }
}

/// Feeds one run's `current` rate into the gate for a series whose prior
/// state is `state` (`None` = first run of the series). Returns the next
/// state to persist plus the verdict.
///
/// Rules, in order:
/// * no prior state → [`TrendVerdict::FirstRun`], baseline = current;
/// * `current / baseline >= regression_ratio` → [`TrendVerdict::Ok`],
///   baseline = `max(current, baseline * `[`BASELINE_DECAY`]`)` (the
///   decayed maximum: improvements re-baseline instantly, mild dips only
///   lower the baseline 5% per run so compounding staircase regressions
///   still accumulate against it), streak reset;
/// * otherwise the streak grows while the baseline holds: soft until
///   `fail_after` consecutive regressed runs, sustained from then on.
///
/// # Panics
///
/// Panics unless `0 < regression_ratio <= 1` and `fail_after >= 1`.
pub fn advance_trend(
    state: Option<TrendState>,
    current: f64,
    regression_ratio: f64,
    fail_after: u32,
) -> (TrendState, TrendVerdict) {
    assert!(
        regression_ratio > 0.0 && regression_ratio <= 1.0,
        "regression ratio must be in (0, 1]"
    );
    assert!(fail_after >= 1, "fail_after must be at least 1");
    let Some(prev) = state else {
        return (
            TrendState {
                baseline: current,
                streak: 0,
            },
            TrendVerdict::FirstRun,
        );
    };
    let ratio = current / prev.baseline.max(1e-9);
    if ratio >= regression_ratio {
        (
            TrendState {
                baseline: current.max(prev.baseline * BASELINE_DECAY),
                streak: 0,
            },
            TrendVerdict::Ok { ratio },
        )
    } else {
        let streak = prev.streak + 1;
        let verdict = if streak >= fail_after {
            TrendVerdict::SustainedRegression { ratio, streak }
        } else {
            TrendVerdict::SoftRegression { ratio, streak }
        };
        (
            TrendState {
                baseline: prev.baseline,
                streak,
            },
            verdict,
        )
    }
}

/// The persisted gate document: per-series state keyed by series name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrendFile {
    /// Per-series gate state.
    pub series: BTreeMap<String, TrendState>,
}

impl TrendFile {
    /// Parses a trend file's JSON text; `None` on any shape mismatch (a
    /// corrupt cache entry must reset the series, never fail the job).
    pub fn parse(text: &str) -> Option<Self> {
        let doc: serde_json::Value = serde_json::from_str(text).ok()?;
        let series_obj = doc.get("series")?.as_object()?;
        let mut series = BTreeMap::new();
        for (name, entry) in series_obj.iter() {
            let baseline = entry.get("baseline")?.as_f64()?;
            let streak = entry.get("streak")?.as_f64()? as u32;
            series.insert(name.clone(), TrendState { baseline, streak });
        }
        Some(Self { series })
    }

    /// Loads the trend file at `path`; missing/corrupt files start fresh.
    pub fn load(path: &Path) -> Self {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Self::parse(&text))
            .unwrap_or_default()
    }

    /// Serializes the document (stable key order — BTreeMap).
    pub fn to_json(&self) -> String {
        let mut series = serde_json::Map::new();
        for (name, state) in &self.series {
            let mut entry = serde_json::Map::new();
            entry.insert("baseline", serde_json::Value::from(state.baseline));
            entry.insert("streak", serde_json::Value::from(state.streak as u64));
            series.insert(name.as_str(), serde_json::Value::Object(entry));
        }
        let mut doc = serde_json::Map::new();
        doc.insert("schema_version", serde_json::Value::from(1u64));
        doc.insert("series", serde_json::Value::Object(series));
        serde_json::to_string_pretty(&serde_json::Value::Object(doc))
    }

    /// Writes the document to `path`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn save(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, self.to_json() + "\n").expect("write trend file");
    }

    /// Feeds one series through [`advance_trend`] with the default
    /// threshold/streak policy, updating the stored state in place.
    pub fn gate(&mut self, name: &str, current: f64) -> TrendVerdict {
        let (next, verdict) = advance_trend(
            self.series.get(name).copied(),
            current,
            DEFAULT_REGRESSION_RATIO,
            DEFAULT_FAIL_AFTER,
        );
        self.series.insert(name.to_string(), next);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(state: Option<TrendState>, rate: f64) -> (TrendState, TrendVerdict) {
        advance_trend(state, rate, DEFAULT_REGRESSION_RATIO, DEFAULT_FAIL_AFTER)
    }

    #[test]
    fn first_run_baselines_without_judgement() {
        let (state, verdict) = step(None, 1000.0);
        assert_eq!(verdict, TrendVerdict::FirstRun);
        assert_eq!(state.baseline, 1000.0);
        assert_eq!(state.streak, 0);
    }

    #[test]
    fn single_run_noise_is_soft_and_recovery_rebaselines() {
        let (state, _) = step(None, 1000.0);
        // One 30%-slower run: soft, never failing.
        let (state, verdict) = step(Some(state), 700.0);
        assert_eq!(
            verdict,
            TrendVerdict::SoftRegression {
                ratio: 0.7,
                streak: 1
            }
        );
        assert!(!verdict.is_failure());
        assert_eq!(state.baseline, 1000.0, "baseline holds through the dip");
        // Recovery clears the streak and re-baselines.
        let (state, verdict) = step(Some(state), 980.0);
        assert!(matches!(verdict, TrendVerdict::Ok { .. }));
        assert_eq!(state.streak, 0);
        assert_eq!(state.baseline, 980.0, "980 beats the decayed 950");
    }

    #[test]
    fn sustained_regression_fails_on_the_second_consecutive_run() {
        // The acceptance scenario: a real >20% regression lands, survives
        // one run as soft noise, and fails CI on the next run.
        let (state, _) = step(None, 1000.0);
        let (state, first) = step(Some(state), 750.0);
        assert!(!first.is_failure(), "single run must stay soft");
        let (state, second) = step(Some(state), 760.0);
        assert_eq!(
            second,
            TrendVerdict::SustainedRegression {
                ratio: 0.76,
                streak: 2
            }
        );
        assert!(second.is_failure());
        // It keeps failing until performance recovers…
        let (state, third) = step(Some(state), 700.0);
        assert!(third.is_failure());
        // …and recovery re-opens the gate.
        let (_, fixed) = step(Some(state), 990.0);
        assert!(!fixed.is_failure());
    }

    #[test]
    fn exactly_threshold_is_not_a_regression() {
        let (state, _) = step(None, 1000.0);
        let (state, verdict) = step(Some(state), 800.0);
        assert!(matches!(verdict, TrendVerdict::Ok { .. }));
        // Decayed max: a tolerated dip only lowers the baseline 5%.
        assert_eq!(state.baseline, 950.0);
    }

    #[test]
    fn improvements_rebaseline_upward() {
        let (state, _) = step(None, 1000.0);
        let (state, _) = step(Some(state), 1500.0);
        assert_eq!(state.baseline, 1500.0);
        // A drop back to the old level is now a regression vs 1500.
        let (_, verdict) = step(Some(state), 1000.0);
        assert!(matches!(verdict, TrendVerdict::SoftRegression { .. }));
    }

    #[test]
    fn staircase_regressions_accumulate_against_the_decayed_baseline() {
        // Three compounding 15% losses: each single step stays above the
        // 0.8 threshold, but the baseline only decays 5% per OK run, so
        // the cumulative loss crosses the threshold and fails — the gate
        // is not ratcheted down step by step.
        let (state, _) = step(None, 1000.0);
        let (state, first) = step(Some(state), 850.0);
        assert!(
            matches!(first, TrendVerdict::Ok { .. }),
            "one 15% dip is tolerated"
        );
        assert_eq!(state.baseline, 950.0);
        let (state, second) = step(Some(state), 722.0); // 0.76x of 950
        assert!(matches!(second, TrendVerdict::SoftRegression { .. }));
        let (_, third) = step(Some(state), 614.0);
        assert!(third.is_failure(), "compounded staircase must fail");
    }

    #[test]
    fn trend_file_round_trips_and_survives_corruption() {
        let mut file = TrendFile::default();
        assert_eq!(
            file.gate("decisions_per_sec", 1000.0),
            TrendVerdict::FirstRun
        );
        file.gate("train_steps_per_sec", 50.0);
        let parsed = TrendFile::parse(&file.to_json()).expect("round trip");
        assert_eq!(parsed, file);
        assert!(TrendFile::parse("not json").is_none());
        assert!(TrendFile::parse("{\"series\": 3}").is_none());
    }

    #[test]
    fn gate_sequence_through_the_file_matches_advance_trend() {
        let mut file = TrendFile::default();
        file.gate("s", 1000.0);
        assert!(!file.gate("s", 700.0).is_failure());
        assert!(file.gate("s", 700.0).is_failure());
        let state = file.series["s"];
        assert_eq!(state.streak, 2);
        assert_eq!(state.baseline, 1000.0);
    }

    #[test]
    #[should_panic(expected = "regression ratio")]
    fn invalid_threshold_rejected() {
        let _ = advance_trend(None, 1.0, 0.0, 2);
    }
}
