//! Figure 1 — training convergence: smoothed episode return vs training
//! episode for the DQN variants (DQN, Double DQN, Dueling DQN, PER DQN).
//!
//! Expected shape: all variants rise from the random-policy return and
//! plateau; Double/Dueling converge at least as fast and more stably than
//! vanilla DQN.

use bench::{bench_scenario, default_passes, drl_variants, emit_csv};
use mano::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let reward = RewardConfig::default();
    let mut lines = vec!["policy,episode,return,smoothed_return".to_string()];
    for config in drl_variants() {
        let label = config.label.clone();
        eprintln!("[fig1] training {label}…");
        let trained = train_drl(&scenario, reward, config, default_passes());
        let smoothed = moving_average(&trained.episode_returns, 200);
        for (i, (&r, &s)) in trained
            .episode_returns
            .iter()
            .zip(smoothed.iter())
            .enumerate()
        {
            // Thin the curve: every 10th episode keeps files plottable.
            if i % 10 == 0 {
                lines.push(format!("{label},{i},{r:.4},{s:.4}"));
            }
        }
        eprintln!(
            "[fig1] {label}: {} episodes, smoothed {:.3} -> {:.3}",
            trained.episode_returns.len(),
            smoothed.first().copied().unwrap_or(0.0),
            smoothed.last().copied().unwrap_or(0.0)
        );
    }
    emit_csv("fig1_convergence.csv", &lines);
}
