//! Figure 1 — training convergence: smoothed episode return vs training
//! episode for the DQN variants (DQN, Double DQN, Dueling DQN, PER DQN).
//! Variants train concurrently on the engine's pool (each training run
//! stays sequential and deterministic); the trained policies then get a
//! multi-seed head-to-head evaluation grid.
//!
//! Expected shape: all variants rise from the random-policy return and
//! plateau; Double/Dueling converge at least as fast and more stably than
//! vanilla DQN.

use bench::{
    bench_scenario, default_passes, drl_variants, emit_csv, emit_report, eval_seeds, factory_of,
};
use drl_vnf_edge::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let reward = RewardConfig::default();

    let variants = drl_variants();
    eprintln!(
        "[fig1] training {} variants on {} threads…",
        variants.len(),
        thread_count()
    );
    let trained = parallel_map(&variants, |_, config| {
        let label = config.label.clone();
        let trained = train_drl(&scenario, reward, config.clone(), default_passes());
        eprintln!("[fig1] {label}: {} episodes", trained.episode_returns.len());
        (label, trained)
    });

    let mut lines = vec!["policy,episode,return,smoothed_return".to_string()];
    for (label, t) in &trained {
        let smoothed = moving_average(&t.episode_returns, 200);
        for (i, (&r, &s)) in t.episode_returns.iter().zip(smoothed.iter()).enumerate() {
            // Thin the curve: every 10th episode keeps files plottable.
            if i % 10 == 0 {
                lines.push(format!("{label},{i},{r:.4},{s:.4}"));
            }
        }
        eprintln!(
            "[fig1] {label}: smoothed {:.3} -> {:.3}",
            smoothed.first().copied().unwrap_or(0.0),
            smoothed.last().copied().unwrap_or(0.0)
        );
    }
    emit_csv("fig1_convergence.csv", &lines);

    // Multi-seed evaluation of the trained variants on identical traces.
    let mut grid = ExperimentGrid::new("fig1_convergence")
        .scenario("lambda=8", 8.0, scenario)
        .reward(reward)
        .seeds(&eval_seeds());
    for (label, t) in trained {
        grid = grid.policy_boxed(label, factory_of(t.policy));
    }
    emit_report(&grid.run());
}
