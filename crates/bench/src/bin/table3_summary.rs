//! Table 3 — head-to-head summary of every policy on the reference
//! scenario (λ = 8, scarce edge capacity): the paper's main comparison,
//! now mean ± 95% CI across the evaluation seeds.

use bench::{
    bench_scenario, emit_markdown, emit_report, eval_seeds, factory_of, standard_factories,
    train_headline,
};
use drl_vnf_edge::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    eprintln!("[table3] training DRL…");
    let trained = train_headline(&scenario);

    let report = ExperimentGrid::new("table3_summary")
        .scenario("lambda=8", 8.0, scenario)
        .seeds(&eval_seeds())
        .policy_boxed("drl", factory_of(trained.policy))
        .policies(standard_factories())
        .run();

    let mut rows: Vec<(String, SummaryAggregate)> = report
        .aggregates
        .iter()
        .map(|a| (a.policy.clone(), a.aggregate.clone()))
        .collect();
    rows.sort_by(|a, b| {
        a.1.combined_objective(1.0, 1.0)
            .total_cmp(&b.1.combined_objective(1.0, 1.0))
    });

    let mut md = String::from(
        "# Table 3 — head-to-head on the reference scenario (λ=8, 8 sites + cloud)\n\n\
         Rows sorted by the combined objective (α·latency + β·cost + rejection penalty),\n\
         mean ± 95% CI across the evaluation seeds.\n\n",
    );
    md.push_str(&markdown_aggregate_comparison(&rows));
    md.push_str("\n| policy | combined objective |\n|---|---|\n");
    for (policy, agg) in &rows {
        md.push_str(&format!(
            "| {} | {:.2} |\n",
            policy,
            agg.combined_objective(1.0, 1.0)
        ));
    }
    emit_markdown("table3_summary.md", &md);
    emit_report(&report);
}
