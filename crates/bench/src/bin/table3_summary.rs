//! Table 3 — head-to-head summary of every policy on the reference
//! scenario (λ = 8, scarce edge capacity): the paper's main comparison.

use bench::{bench_scenario, default_passes, drl_default, emit_markdown};
use mano::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let reward = RewardConfig::default();
    eprintln!("[table3] training DRL…");
    let mut trained = train_drl(&scenario, reward, drl_default(), default_passes());

    let mut results = vec![evaluate_policy(
        &scenario,
        reward,
        &mut trained.policy,
        12345,
    )];
    for mut p in standard_baselines() {
        results.push(evaluate_policy(&scenario, reward, p.as_mut(), 12345));
    }
    results.sort_by(|a, b| {
        a.summary
            .combined_objective(1.0, 1.0)
            .partial_cmp(&b.summary.combined_objective(1.0, 1.0))
            .unwrap()
    });
    let mut md = String::from(
        "# Table 3 — head-to-head on the reference scenario (λ=8, 8 sites + cloud)\n\n\
         Rows sorted by the combined objective (α·latency + β·cost + rejection penalty).\n\n",
    );
    md.push_str(&markdown_comparison(&results));
    md.push_str("\n| policy | combined objective |\n|---|---|\n");
    for r in &results {
        md.push_str(&format!(
            "| {} | {:.2} |\n",
            r.policy,
            r.summary.combined_objective(1.0, 1.0)
        ));
    }
    emit_markdown("table3_summary.md", &md);
}
