//! Figure 7 — time-varying load: per-slot cost and latency under a diurnal
//! cycle with a flash crowd, DRL vs static heuristics. Training (one DRL
//! manager per workload) and the per-policy slot traces fan out on the
//! engine's pool; a merged multi-seed summary grid feeds the JSON report.
//!
//! Expected shape: every policy's cost follows the load envelope; during
//! the flash crowd the adaptive policies (DRL, weighted-greedy) absorb the
//! spike by spilling to reuse/cloud while first-fit's latency spikes.

use bench::{default_passes, drl_default, emit_csv, emit_report, eval_seeds, factory_of, scaled};
use drl_vnf_edge::prelude::*;
use std::time::Instant;

fn dynamic_scenario() -> Scenario {
    let mut s = Scenario::default_metro();
    s.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    s.horizon_slots = scaled(480, 60) as u64;
    s.workload.pattern = LoadPattern::Diurnal {
        base: 6.0,
        amplitude: 4.0,
        period: scaled(240, 30) as u64,
        phase: 0,
    };
    s
}

fn flash_scenario() -> Scenario {
    let mut s = dynamic_scenario();
    s.workload.pattern = LoadPattern::FlashCrowd {
        base: 4.0,
        spike_rate: 14.0,
        spike_start: scaled(160, 20) as u64,
        spike_duration: scaled(80, 10) as u64,
    };
    s
}

/// The slot-trace seed (a single fixed trace keeps the time series
/// readable; the summary grid below carries the multi-seed bands).
const TRACE_SEED: u64 = 2024;

fn main() {
    let reward = RewardConfig::default();
    let workloads = [("diurnal", dynamic_scenario()), ("flash", flash_scenario())];

    eprintln!(
        "[fig7] training per-workload DRL on {} threads…",
        thread_count()
    );
    let trained = parallel_map(&workloads, |_, (tag, scenario)| {
        let t = train_drl(scenario, reward, drl_default(), default_passes().min(6));
        eprintln!("[fig7] {tag}: trained");
        t
    });

    // Per-slot traces: one engine cell per (workload, policy).
    let mut jobs: Vec<(String, Scenario, PolicyFactory)> = Vec::new();
    for ((tag, scenario), t) in workloads.iter().zip(&trained) {
        jobs.push((
            tag.to_string(),
            scenario.clone(),
            factory_of(t.policy.clone()),
        ));
        jobs.push((
            tag.to_string(),
            scenario.clone(),
            factory_of(WeightedGreedyPolicy::default()),
        ));
        jobs.push((
            tag.to_string(),
            scenario.clone(),
            factory_of(FirstFitPolicy),
        ));
        jobs.push((
            tag.to_string(),
            scenario.clone(),
            factory_of(GreedyLatencyPolicy),
        ));
    }
    let mut lines = vec![format!("workload,{}", slot_csv_header())];
    let traces = parallel_map(&jobs, |_, (tag, scenario, factory)| {
        let mut policy = factory();
        policy.set_training(false);
        let mut sim = Simulation::new(scenario, reward);
        let _ = sim.run(policy.as_mut(), TRACE_SEED);
        let label = policy.name();
        sim.metrics()
            .slots()
            .iter()
            .map(|r| format!("{tag},{}", slot_csv_row(&label, r)))
            .collect::<Vec<_>>()
    });
    lines.extend(traces.into_iter().flatten());
    emit_csv("fig7_dynamic.csv", &lines);

    // Multi-seed summary grid: one sub-grid per workload (each has its
    // own trained DRL), merged into the JSON report.
    let reports: Vec<BenchReport> = workloads
        .iter()
        .zip(trained)
        .map(|((tag, scenario), t)| {
            let grid = ExperimentGrid::new(format!("fig7_{tag}"))
                .scenario(*tag, 0.0, scenario.clone())
                .reward(reward)
                .seeds(&eval_seeds())
                .policy_boxed("drl", factory_of(t.policy.clone()))
                .policy("weighted-greedy", || {
                    Box::new(WeightedGreedyPolicy::default())
                })
                .policy("first-fit", || Box::new(FirstFitPolicy))
                .policy("greedy-latency", || Box::new(GreedyLatencyPolicy))
                .run();
            // The same trained manager re-run under SlotSnapshot
            // semantics: the dynamic workloads are where whole-slot
            // frozen-snapshot waves could plausibly change quality
            // (flash-crowd slots carry the widest wavefronts), so the
            // delta rides the report as its own policy column.
            let cells = cells_for_seeds(tag, 0.0, scenario, &eval_seeds());
            let started = Instant::now();
            let snap_cells = parallel_eval_semantics(
                &t.policy,
                "drl-snap",
                reward,
                &cells,
                None,
                false,
                DecisionSemantics::SlotSnapshot,
            );
            let snap = report_from_cells(
                format!("fig7_{tag}_snap"),
                thread_count(),
                started.elapsed().as_secs_f64(),
                snap_cells,
            );
            merge_reports(format!("fig7_{tag}"), vec![grid, snap])
        })
        .collect();
    emit_report(&merge_reports("fig7_dynamic", reports));
}
