//! Figure 7 — time-varying load: per-slot cost and latency under a diurnal
//! cycle with a flash crowd, DRL vs static heuristics.
//!
//! Expected shape: every policy's cost follows the load envelope; during
//! the flash crowd the adaptive policies (DRL, weighted-greedy) absorb the
//! spike by spilling to reuse/cloud while first-fit's latency spikes.

use bench::{default_passes, drl_default, emit_csv, scaled};
use mano::prelude::*;
use workload::pattern::LoadPattern;

fn dynamic_scenario() -> Scenario {
    let mut s = Scenario::default_metro();
    s.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    s.horizon_slots = scaled(480, 60) as u64;
    s.workload.pattern = LoadPattern::Diurnal {
        base: 6.0,
        amplitude: 4.0,
        period: scaled(240, 30) as u64,
        phase: 0,
    };
    s
}

fn flash_scenario() -> Scenario {
    let mut s = dynamic_scenario();
    s.workload.pattern = LoadPattern::FlashCrowd {
        base: 4.0,
        spike_rate: 14.0,
        spike_start: scaled(160, 20) as u64,
        spike_duration: scaled(80, 10) as u64,
    };
    s
}

fn run_and_collect(
    label: &str,
    scenario: &Scenario,
    policy: &mut dyn PlacementPolicy,
    lines: &mut Vec<String>,
    workload_tag: &str,
) {
    policy.set_training(false);
    let mut sim = Simulation::new(scenario, RewardConfig::default());
    let _ = sim.run(policy, 2024);
    for r in sim.metrics().slots() {
        lines.push(format!("{workload_tag},{}", slot_csv_row(label, r)));
    }
}

fn main() {
    let reward = RewardConfig::default();
    let mut lines = vec![format!("workload,{}", slot_csv_header())];

    for (tag, scenario) in [("diurnal", dynamic_scenario()), ("flash", flash_scenario())] {
        eprintln!("[fig7] training DRL on {tag} workload…");
        let mut trained = train_drl(&scenario, reward, drl_default(), default_passes().min(6));
        run_and_collect(
            &trained.policy.name(),
            &scenario,
            &mut trained.policy,
            &mut lines,
            tag,
        );
        let mut wg = WeightedGreedyPolicy::default();
        run_and_collect("weighted-greedy", &scenario, &mut wg, &mut lines, tag);
        let mut ff = FirstFitPolicy;
        run_and_collect("first-fit", &scenario, &mut ff, &mut lines, tag);
        let mut gl = GreedyLatencyPolicy;
        run_and_collect("greedy-latency", &scenario, &mut gl, &mut lines, tag);
    }
    emit_csv("fig7_dynamic.csv", &lines);
}
