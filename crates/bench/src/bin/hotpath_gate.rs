//! hotpath_gate — the CI trend gate over `BENCH_hotpath.json`.
//!
//! Reads the current hotpath report, feeds each tracked throughput series
//! (per-decision decisions/sec, batched decisions/sec, train-steps/sec,
//! the event engine's events/sec and idle-sweep slots/sec, and the
//! serving layer's cross-simulation serve decisions/sec) through the
//! persistent trend state (`hotpath_trend.json`, restored
//! across CI runs via `actions/cache`), rewrites the state, and exits
//! non-zero only on a *sustained* regression: two consecutive runs more
//! than 20% below the accepted baseline. A single slow run is logged as
//! soft noise and never fails the job.
//!
//! When `BENCH_metro.json` (the fig13 metro-scale streaming sweep) sits
//! next to the hotpath report, its largest-scale `requests_per_sec` joins
//! the gated series as `metro_requests_per_sec`; a missing metro report
//! is skipped with a note so cached pre-fig13 runs stay green.
//!
//! Environment:
//! * `RESULTS_DIR` — where `BENCH_hotpath.json` lives (default `results`).
//! * `HOTPATH_TREND_FILE` — trend-state path (default
//!   `<RESULTS_DIR>/hotpath_trend.json`).

use bench::out_path;
use bench::trend::{TrendFile, TrendVerdict};
use std::path::PathBuf;

/// The tracked series: JSON key in the report's `optimized` object.
/// Series newer than the schema's first CI landing are optional so the
/// gate keeps working against cached reports predating them.
const SERIES: &[(&str, bool)] = &[
    ("decisions_per_sec", true),
    ("batched_decisions_per_sec", false),
    ("train_steps_per_sec", true),
    ("events_per_sec", false),
    ("idle_slots_per_sec", false),
    ("serve_decisions_per_sec", false),
    // Recorded by sweep_drive (the sharded multi-process sweep driver);
    // optional because standalone hotpath runs predate/skip the sweep.
    ("sweep_cells_per_sec", false),
];

fn trend_path() -> PathBuf {
    std::env::var_os("HOTPATH_TREND_FILE")
        .map(PathBuf::from)
        .unwrap_or_else(|| out_path("hotpath_trend.json"))
}

/// Feeds one observation through the trend state, logs the verdict and
/// returns whether it is a job-failing sustained regression.
fn gate_series(trend: &mut TrendFile, series: &str, rate: f64) -> bool {
    match trend.gate(series, rate) {
        TrendVerdict::FirstRun => {
            eprintln!("[hotpath-gate] {series}: {rate:.1}/s (first run — baseline set)");
            false
        }
        TrendVerdict::Ok { ratio } => {
            eprintln!("[hotpath-gate] {series}: {rate:.1}/s ({ratio:.2}x of baseline — ok)");
            false
        }
        TrendVerdict::SoftRegression { ratio, streak } => {
            eprintln!(
                "[hotpath-gate] {series}: {rate:.1}/s ({ratio:.2}x of baseline — SOFT \
                 regression, run {streak} of 2; one more consecutive slow run fails CI)"
            );
            false
        }
        TrendVerdict::SustainedRegression { ratio, streak } => {
            eprintln!(
                "[hotpath-gate] {series}: {rate:.1}/s ({ratio:.2}x of baseline — SUSTAINED \
                 regression over {streak} consecutive runs, failing the job)"
            );
            true
        }
    }
}

fn main() {
    let report_path = out_path("BENCH_hotpath.json");
    let text = std::fs::read_to_string(&report_path).unwrap_or_else(|e| {
        panic!(
            "hotpath_gate needs {} (run the hotpath benchmark first): {e}",
            report_path.display()
        )
    });
    let report: serde_json::Value =
        serde_json::from_str(&text).expect("BENCH_hotpath.json is valid JSON");

    let trend_file_path = trend_path();
    let mut trend = TrendFile::load(&trend_file_path);
    let mut failed = false;
    for &(series, required) in SERIES {
        let rate = report
            .get("optimized")
            .and_then(|o| o.get(series))
            .and_then(serde_json::Value::as_f64);
        let Some(rate) = rate else {
            assert!(
                !required,
                "BENCH_hotpath.json is missing required series optimized.{series}"
            );
            // Optional series predate some cached reports — but a skip
            // must never be silent, or a series can quietly fall out of
            // the gate (e.g. a key rename) and regress unobserved.
            eprintln!(
                "[hotpath-gate] SKIP {series}: optimized.{series} missing from {}",
                report_path.display()
            );
            continue;
        };
        failed |= gate_series(&mut trend, series, rate);
    }

    // The fig13 metro-scale streaming sweep is gated when its report is
    // present; absent (e.g. a cached pre-fig13 run) it is skipped.
    let metro_path = out_path("BENCH_metro.json");
    match std::fs::read_to_string(&metro_path) {
        Ok(text) => {
            let metro: serde_json::Value =
                serde_json::from_str(&text).expect("BENCH_metro.json is valid JSON");
            let rate = metro
                .get("requests_per_sec")
                .and_then(serde_json::Value::as_f64)
                .expect("BENCH_metro.json is missing requests_per_sec");
            failed |= gate_series(&mut trend, "metro_requests_per_sec", rate);
        }
        Err(_) => eprintln!(
            "[hotpath-gate] SKIP metro_requests_per_sec: {} missing (run fig13_metro)",
            metro_path.display()
        ),
    }
    trend.save(&trend_file_path);
    eprintln!(
        "[hotpath-gate] trend state written to {} (restore it across runs to keep the series)",
        trend_file_path.display()
    );
    if failed {
        eprintln!("[hotpath-gate] FAIL: sustained >20% hotpath regression");
        std::process::exit(1);
    }
}
