//! Table 1 — simulation parameters (the reconstructed parameter table the
//! paper's evaluation section opens with).

use bench::{bench_scenario, emit_markdown};
use drl_vnf_edge::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let vnfs = VnfCatalog::standard();
    let chains = ChainCatalog::standard(&vnfs);

    let mut md = String::from("# Table 1 — Simulation parameters\n\n");
    md.push_str("| parameter | value |\n|---|---|\n");
    md.push_str(&format!(
        "| edge sites | {} (metro preset, full mesh) |\n",
        scenario.topology.site_count()
    ));
    md.push_str("| cloud | 1 remote site, +20 ms access latency |\n");
    md.push_str(&format!(
        "| edge capacity | {:.0} vCPU / {:.0} GB per site |\n",
        scenario.topology_builder.edge_capacity.cpu, scenario.topology_builder.edge_capacity.mem
    ));
    md.push_str(&format!(
        "| slot duration | {} s |\n",
        scenario.slot_seconds
    ));
    md.push_str(&format!("| horizon | {} slots |\n", scenario.horizon_slots));
    md.push_str("| arrival process | Poisson, λ swept 1–12 req/slot |\n");
    md.push_str(&format!(
        "| flow duration | geometric, mean {} slots |\n",
        scenario.workload.mean_duration_slots
    ));
    md.push_str(&format!(
        "| max instance utilization (admission headroom) | {} |\n",
        scenario.max_instance_utilization
    ));
    md.push_str(&format!(
        "| idle-instance retirement | {} slots |\n",
        scenario.idle_retire_slots
    ));
    md.push_str(&format!(
        "| deployment cost | ${} per instance |\n",
        scenario.prices.deployment_cost
    ));
    md.push_str(&format!(
        "| WAN / cloud traffic | ${} / ${} per GB |\n",
        scenario.prices.wan_traffic_per_gb, scenario.prices.cloud_traffic_per_gb
    ));
    md.push_str(&format!(
        "| energy | ${} per kWh, PUE {} |\n",
        scenario.energy.price_per_kwh, scenario.energy.pue
    ));

    md.push_str("\n## VNF type catalog\n\n| VNF | vCPU | mem (GB) | μ (req/s) | base delay (ms) |\n|---|---|---|---|---|\n");
    for t in vnfs.types() {
        md.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.2} |\n",
            t.name, t.demand.cpu, t.demand.mem, t.service_rate_rps, t.base_processing_ms
        ));
    }

    md.push_str("\n## Service chains\n\n| chain | VNF sequence | SLA (ms) | traffic (GB/slot) | λ per flow (req/s) |\n|---|---|---|---|---|\n");
    for c in chains.chains() {
        let seq: Vec<&str> = c.vnfs.iter().map(|&v| vnfs.get(v).name.as_str()).collect();
        md.push_str(&format!(
            "| {} | {} | {:.0} | {:.2} | {:.0} |\n",
            c.name,
            seq.join(" → "),
            c.latency_budget_ms,
            c.traffic_gb,
            c.arrival_rate_rps
        ));
    }

    emit_markdown("table1_params.md", &md);
}
