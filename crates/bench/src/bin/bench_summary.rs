//! bench_summary — prints the markdown digest of every `BENCH_*.json` in
//! `RESULTS_DIR` to stdout. CI appends it to `$GITHUB_STEP_SUMMARY` so
//! each run's headline rates (grid throughput, hotpath decisions/sec and
//! speedups) are visible without downloading the results artifact.

use bench::results_dir;
use bench::summary::results_markdown;

fn main() {
    print!("{}", results_markdown(&results_dir()));
}
