//! One shard of a sharded sweep: rebuilds the named registry grid,
//! recomputes the (pure, deterministic) shard plan locally, executes
//! exactly its shard's cells, and writes one fragment under
//! `results/shards/`.
//!
//! ```text
//! sweep_worker --grid fig2_load --shard 1 --of 4
//! ```
//!
//! Workers never talk to each other: the plan is a pure function of
//! `(grid, shard count)`, so every process derives the same partition
//! independently. `FAST` and `RESULTS_DIR` are read from the environment
//! (the driver propagates its own), and `EXPER_THREADS` caps this
//! worker's in-process pool — the driver sets it to its per-worker core
//! budget.

use bench::sweep_grids::{build_sweep_grid, sweep_grid_names};
use sweep::prelude::*;

struct Args {
    grid: String,
    shard: usize,
    of: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep_worker --grid <name> --shard <k> --of <n>\n       grids: {}",
        sweep_grid_names().join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut grid = None;
    let mut shard = None;
    let mut of = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--grid" => grid = Some(value),
            "--shard" => shard = value.parse().ok(),
            "--of" => of = value.parse().ok(),
            _ => usage(),
        }
    }
    match (grid, shard, of) {
        (Some(grid), Some(shard), Some(of)) if of > 0 && shard < of => Args { grid, shard, of },
        _ => usage(),
    }
}

fn main() {
    let args = parse_args();
    let Some(grid) = build_sweep_grid(&args.grid) else {
        eprintln!(
            "[sweep_worker] unknown grid {:?}; known: {}",
            args.grid,
            sweep_grid_names().join(", ")
        );
        std::process::exit(2);
    };
    let plans = plan(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        args.of,
    );
    let my_plan = &plans[args.shard];
    let indices = my_plan.cell_indices();
    eprintln!(
        "[sweep_worker] {} shard {}/{}: {} of {} cells",
        grid.grid_name(),
        args.shard,
        args.of,
        indices.len(),
        grid.cell_count()
    );
    let cells = grid.run_cells(&indices);
    let frag = fragment(
        grid.grid_name(),
        grid.grid_fingerprint(),
        args.shard,
        args.of,
        cells,
    );
    let path = frag
        .write_to(&bench::results_dir())
        .expect("write fragment");
    eprintln!("[sweep_worker] wrote {}", path.display());
}
