//! Figure 13 — metro-scale streaming: requests/sec throughput and peak
//! heap while driving the event engine from a lazily generated
//! [`MetroProfile`] stream at growing trace lengths (1x → 100x).
//!
//! The claim under test is the telemetry/streaming subsystem's memory
//! contract: with [`RunInput::Stream`] input, streaming metrics retention
//! and a bounded [`TelemetrySink`], both throughput and peak heap stay
//! flat as the trace grows — the full trace is never materialized and
//! per-slot records are folded, not retained.
//!
//! Outputs `fig13_metro.csv` (one row per scale) and `BENCH_metro.json`
//! (top-level `requests_per_sec` at the largest scale feeds the
//! `hotpath_gate` trend series; `peak_mem_ratio` / `throughput_ratio`
//! compare the largest scale against the smallest).
//!
//! `FAST=1` sweeps 1x/4x/10x on a short base horizon for CI smoke runs;
//! the full sweep is 1x/10x/100x.

use bench::{emit_csv, fast_mode, out_path};
use drl_vnf_edge::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// [`System`] wrapped with live/peak byte counters, so the benchmark can
/// report peak heap per scale without an external profiler. Counts
/// allocation requests, not allocator slack — the flat-line comparison
/// only needs relative growth.
struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the peak-heap watermark to the current live size.
fn reset_peak() -> usize {
    let live = CURRENT.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

struct ScaleResult {
    scale: u64,
    slots: u64,
    requests: u64,
    accepted: u64,
    wall_secs: f64,
    requests_per_sec: f64,
    peak_mem_bytes: u64,
}

fn main() {
    let started = Instant::now();
    let (base_slots, scales): (u64, &[u64]) = if fast_mode() {
        (288, &[1, 4, 10])
    } else {
        (1152, &[1, 10, 100])
    };

    let scenario = Scenario::default_metro();
    let slot_ms = (scenario.slot_seconds * 1000.0).round() as u64;
    let sites: Vec<NodeId> = (0..scenario.topology.site_count()).map(NodeId).collect();
    let mut profile = MetroProfile::default_city(2026);
    // ~3 requests/slot mean with flows a handful of slots long keeps the
    // engine busy without swamping the small default capacities.
    profile.base_rate = 3.0;
    profile.mean_duration_ms = 6.0 * slot_ms as f64;

    let mut results: Vec<ScaleResult> = Vec::new();
    for &scale in scales {
        let horizon = base_slots * scale;
        eprintln!(
            "[fig13] scale {scale}x: {horizon} slots (~{:.0} expected requests)…",
            profile.expected_requests(horizon)
        );

        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let mut sink = TelemetrySink::new();
        let mut stream = profile
            .stream(&sites, horizon, slot_ms)
            .map(TimedArrival::from);

        let live_before = reset_peak();
        let t0 = Instant::now();
        let summary = sim.drive(
            RunInput::Stream(&mut stream),
            &mut policy,
            RunOptions::new()
                .sparse()
                .with_streaming_metrics()
                .with_horizon(horizon)
                .with_telemetry(&mut sink),
        );
        let wall_secs = t0.elapsed().as_secs_f64();
        let peak = PEAK.load(Ordering::Relaxed).saturating_sub(live_before);

        eprintln!(
            "[fig13] scale {scale}x: {} arrivals in {wall_secs:.2}s ({:.0} req/s, peak {:.1} MiB, \
             {} flow records retained / {} dropped)",
            summary.total_arrivals,
            summary.total_arrivals as f64 / wall_secs.max(1e-9),
            peak as f64 / (1024.0 * 1024.0),
            sink.recent_flows().count(),
            sink.dropped_flow_records(),
        );
        results.push(ScaleResult {
            scale,
            slots: summary.slots,
            requests: summary.total_arrivals,
            accepted: summary.total_accepted,
            wall_secs,
            requests_per_sec: summary.total_arrivals as f64 / wall_secs.max(1e-9),
            peak_mem_bytes: peak as u64,
        });
    }

    let mut csv =
        vec!["scale,slots,requests,accepted,wall_secs,requests_per_sec,peak_mem_bytes".to_string()];
    for r in &results {
        csv.push(format!(
            "{},{},{},{},{:.4},{:.1},{}",
            r.scale,
            r.slots,
            r.requests,
            r.accepted,
            r.wall_secs,
            r.requests_per_sec,
            r.peak_mem_bytes
        ));
    }
    emit_csv("fig13_metro.csv", &csv);

    let first = results.first().expect("at least one scale");
    let last = results.last().expect("at least one scale");
    let throughput_ratio = last.requests_per_sec / first.requests_per_sec.max(1e-9);
    let peak_mem_ratio = last.peak_mem_bytes as f64 / (first.peak_mem_bytes as f64).max(1.0);

    let mut doc = serde_json::Map::new();
    doc.insert("schema_version", serde_json::Value::from(1u64));
    doc.insert("name", serde_json::Value::from("fig13_metro"));
    doc.insert("fast", serde_json::Value::from(fast_mode()));
    doc.insert("base_slots", serde_json::Value::from(base_slots));
    let scales_json: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            let mut m = serde_json::Map::new();
            m.insert("scale", serde_json::Value::from(r.scale));
            m.insert("slots", serde_json::Value::from(r.slots));
            m.insert("requests", serde_json::Value::from(r.requests));
            m.insert("accepted", serde_json::Value::from(r.accepted));
            m.insert("wall_secs", serde_json::Value::from(r.wall_secs));
            m.insert(
                "requests_per_sec",
                serde_json::Value::from(r.requests_per_sec),
            );
            m.insert("peak_mem_bytes", serde_json::Value::from(r.peak_mem_bytes));
            serde_json::Value::Object(m)
        })
        .collect();
    doc.insert("scales", serde_json::Value::Array(scales_json));
    // Gate series: throughput at the largest scale, where regressions in
    // the streaming path hurt most.
    doc.insert(
        "requests_per_sec",
        serde_json::Value::from(last.requests_per_sec),
    );
    doc.insert(
        "throughput_ratio",
        serde_json::Value::from(throughput_ratio),
    );
    doc.insert("peak_mem_ratio", serde_json::Value::from(peak_mem_ratio));
    doc.insert(
        "wall_clock_secs",
        serde_json::Value::from(started.elapsed().as_secs_f64()),
    );

    let report_path = out_path("BENCH_metro.json");
    write_lines(
        &report_path,
        &[serde_json::to_string_pretty(&serde_json::Value::Object(
            doc,
        ))],
    )
    .expect("write BENCH_metro.json");
    eprintln!(
        "[fig13] wrote {} (throughput {throughput_ratio:.2}x, peak mem {peak_mem_ratio:.2}x \
         across a {}x horizon growth; {:.2}s wall)",
        report_path.display(),
        last.scale / first.scale.max(1),
        started.elapsed().as_secs_f64()
    );
}
