//! Figure 11 (extension) — value-based vs policy-gradient management:
//! the Double-DQN manager against a REINFORCE manager trained on the same
//! scenario, plus their convergence curves.
//!
//! Expected shape: DQN converges faster and more stably (off-policy replay
//! reuses every transition); REINFORCE reaches a comparable final policy
//! but with noisier curves — the classic trade-off.

use bench::{bench_scenario, default_passes, drl_default, emit_csv, emit_markdown};
use mano::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let reward = RewardConfig::default();
    let passes = default_passes();

    eprintln!("[fig11] training DQN manager…");
    let trained_dqn = train_drl(&scenario, reward, drl_default(), passes);
    eprintln!("[fig11] training REINFORCE manager…");
    let (mut pg_policy, pg_returns, _) =
        train_pg(&scenario, reward, PgManagerConfig::default(), passes);

    // Convergence curves.
    let mut lines = vec!["algorithm,episode,smoothed_return".to_string()];
    for (label, returns) in [
        ("dqn", &trained_dqn.episode_returns),
        ("reinforce", &pg_returns),
    ] {
        let smoothed = moving_average(returns, 200);
        for (i, &s) in smoothed.iter().enumerate() {
            if i % 10 == 0 {
                lines.push(format!("{label},{i},{s:.4}"));
            }
        }
    }
    emit_csv("fig11_pg_vs_dqn_curves.csv", &lines);

    // Head-to-head evaluation on an identical trace.
    let mut dqn_policy = trained_dqn.policy;
    let results = vec![
        evaluate_policy(&scenario, reward, &mut dqn_policy, 616),
        evaluate_policy(&scenario, reward, &mut pg_policy, 616),
    ];
    let mut md = String::from("# Figure 11 — DQN vs REINFORCE managers\n\n");
    md.push_str(&markdown_comparison(&results));
    emit_markdown("fig11_pg_vs_dqn.md", &md);
}
