//! Figure 11 (extension) — value-based vs policy-gradient management:
//! the Double-DQN manager against a REINFORCE manager trained on the same
//! scenario (concurrently, on the engine's pool), plus their convergence
//! curves and a multi-seed head-to-head grid.
//!
//! Expected shape: DQN converges faster and more stably (off-policy replay
//! reuses every transition); REINFORCE reaches a comparable final policy
//! but with noisier curves — the classic trade-off.

use bench::{
    bench_scenario, default_passes, drl_default, emit_csv, emit_markdown, emit_report, eval_seeds,
    factory_of,
};
use drl_vnf_edge::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let reward = RewardConfig::default();
    let passes = default_passes();

    eprintln!(
        "[fig11] training DQN and REINFORCE on {} threads…",
        thread_count()
    );
    let algorithms = ["dqn", "reinforce"];
    let trained: Vec<(String, Vec<f32>, PolicyFactory)> =
        parallel_map(&algorithms, |_, &algo| match algo {
            "dqn" => {
                let t = train_drl(&scenario, reward, drl_default(), passes);
                ("dqn".to_string(), t.episode_returns, factory_of(t.policy))
            }
            _ => {
                let (policy, returns, _) =
                    train_pg(&scenario, reward, PgManagerConfig::default(), passes);
                ("reinforce".to_string(), returns, factory_of(policy))
            }
        });

    // Convergence curves.
    let mut lines = vec!["algorithm,episode,smoothed_return".to_string()];
    for (label, returns, _) in &trained {
        let smoothed = moving_average(returns, 200);
        for (i, &s) in smoothed.iter().enumerate() {
            if i % 10 == 0 {
                lines.push(format!("{label},{i},{s:.4}"));
            }
        }
    }
    emit_csv("fig11_pg_vs_dqn_curves.csv", &lines);

    // Head-to-head evaluation on identical traces across seeds.
    let mut grid = ExperimentGrid::new("fig11_pg_vs_dqn")
        .scenario("lambda=8", 8.0, scenario)
        .reward(reward)
        .seeds(&eval_seeds());
    for (label, _, factory) in trained {
        grid = grid.policy_boxed(label, factory);
    }
    let report = grid.run();

    let rows: Vec<(String, SummaryAggregate)> = report
        .aggregates
        .iter()
        .map(|a| (a.policy.clone(), a.aggregate.clone()))
        .collect();
    let mut md = String::from("# Figure 11 — DQN vs REINFORCE managers\n\n");
    md.push_str(&markdown_aggregate_comparison(&rows));
    emit_markdown("fig11_pg_vs_dqn.md", &md);
    emit_report(&report);
}
