//! Quick calibration harness: trains the headline DRL manager on the
//! default scenario and prints a head-to-head table against the baselines.
//! Useful when tuning hyperparameters; not part of the figure suite.

use bench::{comparison_baselines, default_passes, drl_default, scaled};
use drl_vnf_edge::prelude::*;

fn main() {
    let mut scenario = Scenario::default_metro();
    scenario.horizon_slots = scaled(360, 60) as u64;
    if let Ok(rate) = std::env::var("RATE") {
        scenario = scenario.with_arrival_rate(rate.parse().expect("RATE must be a number"));
    }
    if let Ok(cap) = std::env::var("EDGE_CPU") {
        let cpu: f64 = cap.parse().expect("EDGE_CPU must be a number");
        scenario = scenario.with_edge_capacity(edgenet::node::Resources::new(cpu, cpu * 4.0));
    }
    let reward = RewardConfig::default();

    let passes: usize = std::env::var("PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_passes);
    eprintln!("[calibrate] training DRL ({passes} passes)…");
    let start = std::time::Instant::now();
    let mut trained = train_drl(&scenario, reward, drl_default(), passes);
    eprintln!(
        "[calibrate] trained in {:.1}s, {} episodes, {} learn steps",
        start.elapsed().as_secs_f64(),
        trained.episode_returns.len(),
        trained.policy.agent().learn_steps()
    );
    let smoothed = moving_average(&trained.episode_returns, 100);
    if let (Some(first), Some(last)) = (smoothed.first(), smoothed.last()) {
        eprintln!("[calibrate] smoothed return: {first:.3} -> {last:.3}");
    }

    let mut results = Vec::new();
    results.push(evaluate_policy(
        &scenario,
        reward,
        &mut trained.policy,
        1000,
    ));
    for mut p in comparison_baselines() {
        results.push(evaluate_policy(&scenario, reward, p.as_mut(), 1000));
    }
    results.sort_by(|a, b| {
        a.summary
            .combined_objective(1.0, 1.0)
            .partial_cmp(&b.summary.combined_objective(1.0, 1.0))
            .unwrap()
    });
    println!("{}", markdown_comparison(&results));
}
