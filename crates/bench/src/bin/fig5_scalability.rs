//! Figure 5 — scalability: per-decision wall-clock time and achieved
//! latency/cost as the number of edge sites grows. One sub-grid per size
//! (the DRL observation width depends on N, so each size trains its own
//! manager), merged into a single report.
//!
//! Decision time is deliberately *kept* in this figure's cells (the whole
//! point is timing), so unlike the other figures its CSV is not covered
//! by the byte-identical determinism guarantee.

use bench::{
    comparison_factories, default_passes, drl_default, emit_csv, emit_report, eval_seeds,
    factory_of, scaled,
};
use exper::prelude::*;
use mano::prelude::*;

fn size_scenario(n: usize) -> Scenario {
    let mut scenario = Scenario::default_metro().with_arrival_rate(6.0);
    scenario.topology = TopologySpec::Metro { sites: n };
    scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    scenario.horizon_slots = scaled(240, 30) as u64;
    scenario
}

fn main() {
    let sizes: Vec<usize> = if bench::fast_mode() {
        vec![4, 8]
    } else {
        vec![4, 8, 12, 16]
    };
    let reward = RewardConfig::default();

    // Train one DRL manager per size concurrently.
    eprintln!(
        "[fig5] training {} sizes on {} threads…",
        sizes.len(),
        thread_count()
    );
    let trained = parallel_map(&sizes, |_, &n| {
        let scenario = size_scenario(n);
        let t = train_drl(&scenario, reward, drl_default(), default_passes().min(5));
        eprintln!("[fig5] sites = {n}: trained");
        (n, t)
    });

    // One evaluation sub-grid per size (its own DRL + shared baselines).
    let reports: Vec<BenchReport> = trained
        .into_iter()
        .map(|(n, t)| {
            ExperimentGrid::new(format!("fig5_n{n}"))
                .scenario(format!("sites={n}"), n as f64, size_scenario(n))
                .reward(reward)
                .seeds(&eval_seeds())
                .keep_decision_time()
                .policy_boxed("drl", factory_of(t.policy))
                .policies(comparison_factories())
                .run()
        })
        .collect();
    let report = merge_reports("fig5_scalability", reports);

    emit_csv("fig5_scalability.csv", &sweep_csv(&report));
    for a in &report.aggregates {
        eprintln!(
            "[fig5] n={:>2} {:>16}: {:>6.2} ms, ${:.4}/slot, {:.1} µs/decision",
            a.x,
            a.policy,
            a.aggregate.mean("mean_latency_ms"),
            a.aggregate.mean("mean_slot_cost_usd"),
            a.aggregate.mean("mean_decision_time_us"),
        );
    }
    emit_report(&report);
}
