//! Figure 5 — scalability: per-decision wall-clock time and achieved
//! latency/cost as the number of edge sites grows. One sub-grid per size
//! (the DRL observation width depends on N, so each size trains its own
//! manager), merged into a single report.
//!
//! The DRL manager appears three times: `drl` evaluates through the
//! engine's batched-inference path (per-slot batched forwards,
//! `parallel_eval` fan-out with one warm workspace per worker),
//! `drl-seq` is the same trained network forced onto per-decision
//! forwards — the figure's µs/decision column is the batched win, and
//! both columns' quality metrics are bit-identical by construction —
//! and `drl-snap` re-runs the batched network under
//! `DecisionSemantics::SlotSnapshot` (whole-slot frozen-snapshot
//! wavefronts with joint conflict-checked apply), so the snapshot
//! semantics' policy-quality delta is a column of the same figure.
//!
//! Decision time is deliberately *kept* in this figure's cells (the whole
//! point is timing), so unlike the other figures its CSV is not covered
//! by the byte-identical determinism guarantee.

use bench::{
    comparison_factories, default_passes, drl_default, emit_csv, emit_report, eval_seeds, scaled,
};
use drl_vnf_edge::prelude::*;
use std::time::Instant;

fn size_scenario(n: usize) -> Scenario {
    let mut scenario = Scenario::default_metro().with_arrival_rate(6.0);
    scenario.topology = TopologySpec::Metro { sites: n };
    scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    scenario.horizon_slots = scaled(240, 30) as u64;
    scenario
}

fn main() {
    let sizes: Vec<usize> = if bench::fast_mode() {
        vec![4, 8]
    } else {
        vec![4, 8, 12, 16]
    };
    let reward = RewardConfig::default();

    // Train one DRL manager per size concurrently.
    eprintln!(
        "[fig5] training {} sizes on {} threads…",
        sizes.len(),
        thread_count()
    );
    let trained = parallel_map(&sizes, |_, &n| {
        let scenario = size_scenario(n);
        let t = train_drl(&scenario, reward, drl_default(), default_passes().min(5));
        eprintln!("[fig5] sites = {n}: trained");
        (n, t)
    });

    // One evaluation report per size: the heuristic baselines run through
    // the grid; both DRL variants fan out through `parallel_eval`, one
    // warm policy clone per worker thread.
    let reports: Vec<BenchReport> = trained
        .into_iter()
        .map(|(n, t)| {
            let scenario = size_scenario(n);
            let label = format!("sites={n}");
            let baseline_grid = ExperimentGrid::new(format!("fig5_n{n}"))
                .scenario(label.clone(), n as f64, scenario.clone())
                .reward(reward)
                .seeds(&eval_seeds())
                .keep_decision_time()
                .policies(comparison_factories())
                .run();

            let cells = cells_for_seeds(&label, n as f64, &scenario, &eval_seeds());
            let batched = t.policy;
            let mut sequential = batched.clone();
            sequential.set_batched_inference(false);
            let started = Instant::now();
            let mut drl_cells = parallel_eval(&batched, "drl", reward, &cells, None, true);
            drl_cells.extend(parallel_eval(
                &sequential,
                "drl-seq",
                reward,
                &cells,
                None,
                true,
            ));
            drl_cells.extend(parallel_eval_semantics(
                &batched,
                "drl-snap",
                reward,
                &cells,
                None,
                true,
                DecisionSemantics::SlotSnapshot,
            ));
            let drl_report = report_from_cells(
                format!("fig5_n{n}_drl"),
                thread_count(),
                started.elapsed().as_secs_f64(),
                drl_cells,
            );
            merge_reports(format!("fig5_n{n}"), vec![drl_report, baseline_grid])
        })
        .collect();
    let report = merge_reports("fig5_scalability", reports);

    emit_csv("fig5_scalability.csv", &sweep_csv(&report));
    for a in &report.aggregates {
        eprintln!(
            "[fig5] n={:>2} {:>16}: {:>6.2} ms, ${:.4}/slot, {:.1} µs/decision",
            a.x,
            a.policy,
            a.aggregate.mean("mean_latency_ms"),
            a.aggregate.mean("mean_slot_cost_usd"),
            a.aggregate.mean("mean_decision_time_us"),
        );
    }
    emit_report(&report);
}
