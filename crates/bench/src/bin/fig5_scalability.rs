//! Figure 5 — scalability: per-decision wall-clock time and achieved
//! latency/cost as the number of edge sites grows.
//!
//! Expected shape: heuristic decision time grows linearly in N (candidate
//! scan); DRL decision time grows with the network's input width but stays
//! in the tens of microseconds; solution quality is stable across N.

use bench::{comparison_baselines, default_passes, drl_default, emit_csv, fast_mode, scaled};
use mano::prelude::*;

fn main() {
    let sizes: Vec<usize> = if fast_mode() {
        vec![4, 8]
    } else {
        vec![4, 8, 12, 16]
    };
    let reward = RewardConfig::default();
    let mut lines = vec![format!("{},n_sites", summary_csv_header())];

    for &n in &sizes {
        eprintln!("[fig5] sites = {n}");
        let mut scenario = Scenario::default_metro().with_arrival_rate(6.0);
        scenario.topology = TopologySpec::Metro { sites: n };
        scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
        scenario.horizon_slots = scaled(240, 30) as u64;

        // Train a DRL manager per size (the observation width depends on N).
        let mut trained = train_drl(&scenario, reward, drl_default(), default_passes().min(5));
        let mut results = vec![evaluate_policy(&scenario, reward, &mut trained.policy, 555)];
        for mut p in comparison_baselines() {
            results.push(evaluate_policy(&scenario, reward, p.as_mut(), 555));
        }
        for r in &results {
            lines.push(format!(
                "{},{n}",
                summary_csv_row(&r.policy, n as f64, &r.summary)
            ));
            eprintln!(
                "[fig5]   {:>16}: {:>6.2} ms, ${:.4}/slot, {:.1} µs/decision",
                r.policy,
                r.summary.mean_admission_latency_ms,
                r.summary.mean_slot_cost_usd,
                r.summary.mean_decision_time_us
            );
        }
    }
    emit_csv("fig5_scalability.csv", &lines);
}
