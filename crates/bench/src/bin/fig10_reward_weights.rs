//! Figure 10 — reward-weight sensitivity: sweeping α (latency weight) vs
//! β (cost weight) traces the latency/cost trade-off frontier of the DRL
//! manager. The five weightings train concurrently; the frontier points
//! are means ± 95% CI across the evaluation seeds.
//!
//! Expected shape: latency-heavy weights produce low latency and higher
//! cost; cost-heavy the reverse; the points form a monotone frontier.

use bench::{
    bench_scenario, default_passes, drl_default, emit_csv, emit_report, eval_seeds, factory_of,
};
use drl_vnf_edge::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let weights = [
        (4.0f32, 0.25f32),
        (2.0, 0.5),
        (1.0, 1.0),
        (0.5, 2.0),
        (0.25, 4.0),
    ];

    eprintln!(
        "[fig10] training {} weightings on {} threads…",
        weights.len(),
        thread_count()
    );
    let trained = parallel_map(&weights, |_, &(alpha, beta)| {
        let reward = RewardConfig {
            alpha_latency: alpha,
            beta_cost: beta,
            ..RewardConfig::default()
        };
        let t = train_drl(&scenario, reward, drl_default(), default_passes().min(6));
        eprintln!("[fig10] α={alpha}, β={beta}: trained");
        t
    });

    // One grid column per weighting; physical metrics (latency, cost,
    // acceptance) don't depend on the evaluation-time reward shaping.
    let mut grid = ExperimentGrid::new("fig10_reward_weights")
        .scenario("lambda=8", 8.0, scenario)
        .seeds(&eval_seeds());
    for (&(alpha, beta), t) in weights.iter().zip(trained) {
        grid = grid.policy_boxed(format!("a{alpha}-b{beta}"), factory_of(t.policy));
    }
    let report = grid.run();

    let mut lines = vec![
        "alpha,beta,seeds,mean_latency_ms,mean_latency_ms_ci95,mean_slot_cost_usd,\
         mean_slot_cost_usd_ci95,acceptance_ratio,acceptance_ratio_ci95,\
         sla_violation_ratio,sla_violation_ratio_ci95"
            .to_string(),
    ];
    for ((alpha, beta), a) in weights.iter().zip(&report.aggregates) {
        let g = |name: &str| a.aggregate.get(name).expect("standard metric");
        eprintln!(
            "[fig10]   α={alpha}, β={beta} → {:.2} ± {:.2} ms, ${:.4}/slot",
            g("mean_latency_ms").mean,
            g("mean_latency_ms").ci95,
            g("mean_slot_cost_usd").mean,
        );
        lines.push(format!(
            "{alpha},{beta},{},{:.4},{:.4},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4}",
            a.aggregate.runs,
            g("mean_latency_ms").mean,
            g("mean_latency_ms").ci95,
            g("mean_slot_cost_usd").mean,
            g("mean_slot_cost_usd").ci95,
            g("acceptance_ratio").mean,
            g("acceptance_ratio").ci95,
            g("sla_violation_ratio").mean,
            g("sla_violation_ratio").ci95,
        ));
    }
    emit_csv("fig10_reward_weights.csv", &lines);
    emit_report(&report);
}
