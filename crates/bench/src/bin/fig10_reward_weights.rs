//! Figure 10 — reward-weight sensitivity: sweeping α (latency weight) vs
//! β (cost weight) traces the latency/cost trade-off frontier of the DRL
//! manager.
//!
//! Expected shape: latency-heavy weights produce low latency and higher
//! cost; cost-heavy the reverse; the points form a monotone frontier.

use bench::{bench_scenario, default_passes, drl_default, emit_csv};
use mano::prelude::*;

fn main() {
    let scenario = bench_scenario(8.0);
    let weights = [
        (4.0f32, 0.25f32),
        (2.0, 0.5),
        (1.0, 1.0),
        (0.5, 2.0),
        (0.25, 4.0),
    ];
    let mut lines = vec![
        "alpha,beta,mean_latency_ms,mean_slot_cost_usd,acceptance_ratio,sla_violation_ratio"
            .to_string(),
    ];
    for (alpha, beta) in weights {
        eprintln!("[fig10] training with α={alpha}, β={beta}…");
        let reward = RewardConfig {
            alpha_latency: alpha,
            beta_cost: beta,
            ..RewardConfig::default()
        };
        let mut trained = train_drl(&scenario, reward, drl_default(), default_passes().min(6));
        let result = evaluate_policy(&scenario, reward, &mut trained.policy, 31);
        let s = &result.summary;
        eprintln!(
            "[fig10]   → {:.2} ms, ${:.4}/slot",
            s.mean_admission_latency_ms, s.mean_slot_cost_usd
        );
        lines.push(format!(
            "{alpha},{beta},{:.4},{:.6},{:.4},{:.4}",
            s.mean_admission_latency_ms,
            s.mean_slot_cost_usd,
            s.acceptance_ratio,
            s.sla_violation_ratio
        ));
    }
    emit_csv("fig10_reward_weights.csv", &lines);
}
