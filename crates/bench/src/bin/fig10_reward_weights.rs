//! Figure 10 — reward-weight sensitivity: sweeping α (latency weight) vs
//! β (cost weight) traces the latency/cost trade-off frontier of the DRL
//! manager. The weight lattice lives in the checked-in
//! `manifests/fig10_reward_weights.json` (one reward point per paired
//! (α, β) value); this binary is just the manifest's exhaustive
//! evaluation plus the classic frontier CSV, now with a composite
//! `health` column. `search_drive fig10_reward_weights` runs the same
//! manifest under successive halving instead.
//!
//! Expected shape: latency-heavy weights produce low latency and higher
//! cost; cost-heavy the reverse; the points form a monotone frontier.

use bench::manifests::{load_checked_manifest, pretrained_trainer};
use bench::{emit_csv, emit_report, fast_mode};
use drl_vnf_edge::prelude::*;

fn main() {
    let manifest = load_checked_manifest("fig10_reward_weights");
    let health = HealthScore::new(manifest.health.clone());
    let mut trainer = pretrained_trainer(&manifest);
    let expansion = manifest.expand(fast_mode());

    let weights: Vec<(f64, f64)> = expansion.points.iter().map(|p| (p.alpha, p.beta)).collect();
    let reports: Vec<BenchReport> = expansion
        .points
        .iter()
        .map(|point| point.grid_with(&mut trainer).run())
        .collect();
    let report = merge_reports("fig10_reward_weights", reports);

    // One aggregate per reward point (each point grid is 1 scenario ×
    // 1 trained column); health is normalized across the frontier.
    assert_eq!(report.aggregates.len(), weights.len());
    let healths = health.score_aggregates(&report.aggregates);

    let mut lines = vec![
        "alpha,beta,seeds,mean_latency_ms,mean_latency_ms_ci95,mean_slot_cost_usd,\
         mean_slot_cost_usd_ci95,acceptance_ratio,acceptance_ratio_ci95,\
         sla_violation_ratio,sla_violation_ratio_ci95,health"
            .to_string(),
    ];
    for (((alpha, beta), a), h) in weights.iter().zip(&report.aggregates).zip(&healths) {
        let g = |name: &str| a.aggregate.get(name).expect("standard metric");
        eprintln!(
            "[fig10]   α={alpha}, β={beta} → {:.2} ± {:.2} ms, ${:.4}/slot, health {h:.4}",
            g("mean_latency_ms").mean,
            g("mean_latency_ms").ci95,
            g("mean_slot_cost_usd").mean,
        );
        lines.push(format!(
            "{alpha},{beta},{},{:.4},{:.4},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4}",
            a.aggregate.runs,
            g("mean_latency_ms").mean,
            g("mean_latency_ms").ci95,
            g("mean_slot_cost_usd").mean,
            g("mean_slot_cost_usd").ci95,
            g("acceptance_ratio").mean,
            g("acceptance_ratio").ci95,
            g("sla_violation_ratio").mean,
            g("sla_violation_ratio").ci95,
            h,
        ));
    }
    emit_csv("fig10_reward_weights.csv", &lines);
    emit_report(&report);
}
