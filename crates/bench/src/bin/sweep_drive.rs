//! Drives a sharded sweep end to end on one machine: spawns N
//! `sweep_worker` processes over a registry grid, merges their fragments,
//! checks the merged canonical JSON byte-for-byte against an in-process
//! reference run, and records the sharded throughput in
//! `BENCH_hotpath.json`.
//!
//! ```text
//! sweep_drive --grid fig2_load --shards 4 --workers 4
//! sweep_drive --grid fig2_load --in-process   # reference run only
//! ```
//!
//! Scheduling: at most `--workers` children run concurrently; each child
//! gets `EXPER_THREADS = max(1, budget / workers)` (budget = the driver's
//! own `EXPER_THREADS` if set, else available parallelism) so the fleet
//! shares the machine's cores instead of oversubscribing them N-fold. A
//! worker that exits non-zero is retried exactly once; a second failure
//! aborts the drive. `FAST` and `RESULTS_DIR` are inherited by workers
//! from this process's environment.

use bench::sweep_grids::{build_sweep_grid, sweep_grid_names};
use serde_json::Value;
use std::path::Path;
use std::process::{Child, Command};
use std::time::{Duration, Instant};
use sweep::prelude::*;

struct Args {
    grid: String,
    shards: usize,
    workers: usize,
    in_process: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep_drive --grid <name> [--shards <n>] [--workers <n>] [--in-process]\n       grids: {}",
        sweep_grid_names().join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut grid = None;
    let mut shards = None;
    let mut workers = None;
    let mut in_process = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--in-process" => in_process = true,
            "--grid" => grid = Some(args.next().unwrap_or_else(|| usage())),
            "--shards" => shards = args.next().and_then(|v| v.parse().ok()),
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()),
            _ => usage(),
        }
    }
    let Some(grid) = grid else { usage() };
    let shards = shards.unwrap_or(4);
    let workers = workers.unwrap_or(shards).min(shards.max(1));
    if shards == 0 || workers == 0 {
        usage();
    }
    Args {
        grid,
        shards,
        workers,
        in_process,
    }
}

/// The driver's total core budget: its own `EXPER_THREADS` if set,
/// otherwise the machine's available parallelism.
fn core_budget() -> usize {
    match std::env::var(exper::pool::THREADS_ENV) {
        Ok(v) => v.trim().parse().ok().filter(|&n| n > 0),
        Err(_) => None,
    }
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// One queued shard execution (spawn + single retry bookkeeping).
struct Slot {
    shard: usize,
    child: Child,
    retried: bool,
}

fn spawn_worker(exe: &Path, grid: &str, shard: usize, of: usize, threads: usize) -> Child {
    Command::new(exe)
        .args([
            "--grid",
            grid,
            "--shard",
            &shard.to_string(),
            "--of",
            &of.to_string(),
        ])
        .env(exper::pool::THREADS_ENV, threads.to_string())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("[sweep_drive] cannot spawn {}: {e}", exe.display());
            std::process::exit(1);
        })
}

/// Runs all shards as worker processes, retrying each failed shard once.
/// Returns the fleet's wall-clock seconds (spawn of the first worker to
/// exit of the last).
fn run_fleet(args: &Args, per_worker_threads: usize) -> f64 {
    let exe = std::env::current_exe()
        .expect("own path")
        .with_file_name("sweep_worker");
    let started = Instant::now();
    let mut pending: Vec<usize> = (0..args.shards).collect();
    let mut running: Vec<Slot> = Vec::new();
    loop {
        while running.len() < args.workers {
            let Some(shard) = pending.first().copied() else {
                break;
            };
            pending.remove(0);
            eprintln!("[sweep_drive] shard {shard}/{}: launched", args.shards);
            running.push(Slot {
                shard,
                child: spawn_worker(&exe, &args.grid, shard, args.shards, per_worker_threads),
                retried: false,
            });
        }
        if running.is_empty() {
            break;
        }
        let mut still_running = Vec::with_capacity(running.len());
        for mut slot in running {
            match slot.child.try_wait().expect("wait on worker") {
                None => still_running.push(slot),
                Some(status) if status.success() => {
                    eprintln!("[sweep_drive] shard {}/{}: done", slot.shard, args.shards);
                }
                Some(status) => {
                    if slot.retried {
                        eprintln!(
                            "[sweep_drive] shard {}/{} failed twice ({status}); aborting",
                            slot.shard, args.shards
                        );
                        std::process::exit(1);
                    }
                    eprintln!(
                        "[sweep_drive] shard {}/{} failed ({status}); retrying once",
                        slot.shard, args.shards
                    );
                    still_running.push(Slot {
                        shard: slot.shard,
                        child: spawn_worker(
                            &exe,
                            &args.grid,
                            slot.shard,
                            args.shards,
                            per_worker_threads,
                        ),
                        retried: true,
                    });
                }
            }
        }
        running = still_running;
        if !running.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    started.elapsed().as_secs_f64()
}

/// Rebuilds a JSON object with one top-level key replaced (the vendored
/// `serde_json` map is append-only — no `get_mut`).
fn with_key(doc: &Value, key: &str, value: Value) -> Value {
    let mut out = serde_json::Map::new();
    if let Some(obj) = doc.as_object() {
        for (k, v) in obj.iter() {
            if k != key {
                out.insert(k, v.clone());
            }
        }
    }
    out.insert(key, value);
    Value::Object(out)
}

/// Folds the sweep throughput into `BENCH_hotpath.json`:
/// `optimized.sweep_cells_per_sec` (the gated trend series) plus a
/// `sweep` section with the full measurement context. Creates a minimal
/// skeleton when no hotpath report exists yet (standalone sweep runs).
fn record_hotpath(results: &Path, sweep_section: Value, cells_per_sec: f64) {
    let path = results.join("BENCH_hotpath.json");
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_else(|| {
            let mut m = serde_json::Map::new();
            m.insert("schema_version", Value::from(1u64));
            m.insert("name", Value::from("hotpath"));
            Value::Object(m)
        });
    let optimized = doc
        .get("optimized")
        .cloned()
        .unwrap_or_else(|| Value::Object(serde_json::Map::new()));
    let optimized = with_key(
        &optimized,
        "sweep_cells_per_sec",
        Value::from(cells_per_sec),
    );
    let doc = with_key(&doc, "optimized", optimized);
    let doc = with_key(&doc, "sweep", sweep_section);
    mano::report::write_lines(&path, &[serde_json::to_string_pretty(&doc)])
        .expect("write hotpath report");
    eprintln!(
        "[sweep_drive] recorded sweep_cells_per_sec in {}",
        path.display()
    );
}

fn main() {
    let args = parse_args();
    let Some(grid) = build_sweep_grid(&args.grid) else {
        eprintln!(
            "[sweep_drive] unknown grid {:?}; known: {}",
            args.grid,
            sweep_grid_names().join(", ")
        );
        std::process::exit(2);
    };
    let results = bench::results_dir();

    if args.in_process {
        let started = Instant::now();
        let report = grid.run();
        let wall = started.elapsed().as_secs_f64();
        let path = report
            .write_canonical_to(&results)
            .expect("write reference report");
        eprintln!(
            "[sweep_drive] in-process reference: {} cells in {wall:.2}s -> {}",
            report.cells.len(),
            path.display()
        );
        return;
    }

    // Single-process reference first: it provides both the byte-identity
    // check and the denominator of the speedup measurement.
    eprintln!(
        "[sweep_drive] {}: single-process reference run ({} cells)…",
        args.grid,
        grid.cell_count()
    );
    let started = Instant::now();
    let reference = grid.run();
    let single_wall = started.elapsed().as_secs_f64();
    let reference_bytes = serde_json::to_string_pretty(&reference.canonical_json());

    let budget = core_budget();
    let per_worker_threads = (budget / args.workers).max(1);
    eprintln!(
        "[sweep_drive] {}: {} shards on {} workers × {} threads (budget {})…",
        args.grid, args.shards, args.workers, per_worker_threads, budget
    );
    let fleet_wall = run_fleet(&args, per_worker_threads);

    let dir = shards_dir(&results);
    let mut fragments = Vec::with_capacity(args.shards);
    for shard_id in 0..args.shards {
        let path = dir.join(fragment_file_name(&args.grid, shard_id, args.shards));
        match load_fragment(&path) {
            Some(frag) => fragments.push(frag),
            None => {
                eprintln!("[sweep_drive] missing fragment {}", path.display());
                std::process::exit(1);
            }
        }
    }
    let merged = match merge_fragments(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        &fragments,
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[sweep_drive] merge refused: {e}");
            std::process::exit(1);
        }
    };
    let merged_bytes = serde_json::to_string_pretty(&merged.canonical_json());
    if merged_bytes != reference_bytes {
        eprintln!(
            "[sweep_drive] DETERMINISM VIOLATION: merged canonical JSON differs \
             from the single-process reference for {}",
            args.grid
        );
        std::process::exit(1);
    }
    let path = merged
        .write_canonical_to(&results)
        .expect("write merged report");

    let cells = grid.cell_count();
    let cells_per_sec = cells as f64 / fleet_wall.max(1e-9);
    let single_cells_per_sec = cells as f64 / single_wall.max(1e-9);
    let speedup = cells_per_sec / single_cells_per_sec.max(1e-9);
    eprintln!(
        "[sweep_drive] {}: merged == reference (byte-identical) -> {}",
        args.grid,
        path.display()
    );
    eprintln!(
        "[sweep_drive] sharded {cells_per_sec:.2} cells/s vs single-process \
         {single_cells_per_sec:.2} cells/s (speedup {speedup:.2}x)"
    );
    if budget < args.workers {
        eprintln!(
            "[sweep_drive] note: {} workers on a {budget}-core budget — expect ~1x; \
             process sharding pays off when cores >= workers",
            args.workers
        );
    }

    let mut sweep = serde_json::Map::new();
    sweep.insert("grid", Value::from(args.grid.as_str()));
    sweep.insert("cells", Value::from(cells as u64));
    sweep.insert("shards", Value::from(args.shards as u64));
    sweep.insert("workers", Value::from(args.workers as u64));
    sweep.insert("worker_threads", Value::from(per_worker_threads as u64));
    sweep.insert("core_budget", Value::from(budget as u64));
    sweep.insert("wall_clock_secs", Value::from(fleet_wall));
    sweep.insert("cells_per_sec", Value::from(cells_per_sec));
    sweep.insert("single_process_wall_clock_secs", Value::from(single_wall));
    sweep.insert(
        "single_process_cells_per_sec",
        Value::from(single_cells_per_sec),
    );
    sweep.insert("speedup", Value::from(speedup));
    record_hotpath(&results, Value::Object(sweep), cells_per_sec);
}
