//! Figure 12 — resilience under dynamic node failures: acceptance, cost
//! and recovery metrics vs per-slot failure rate, DRL vs heuristics,
//! multi-seed bands. Every scenario runs a seeded stochastic
//! failure/repair process (`EventSchedule::Stochastic`); failed nodes
//! evict their instances and the disrupted flows re-enter placement
//! through the same policy path as fresh admissions.
//!
//! The DRL manager is trained once on a failure-bearing scenario, so its
//! replay buffer contains re-placement episodes and its observation's
//! network-health features (live-node fraction, capacity-loss fraction)
//! carry signal during training.
//!
//! Expected shape: acceptance and replacement success fall with the
//! failure rate for every policy; the adaptive policies (DRL,
//! weighted-greedy) degrade more gracefully than first-fit because they
//! spread load off the (about-to-be-scarce) consolidated nodes.

use bench::{
    bench_scenario, default_passes, drl_default, emit_markdown, emit_report, emit_sweep_csv,
    eval_seeds, factory_of, fast_mode,
};
use drl_vnf_edge::prelude::*;
use std::fmt::Write as _;

/// Per-node per-slot failure probabilities swept on the x axis.
fn failure_rates() -> Vec<f64> {
    if fast_mode() {
        vec![0.0, 0.01]
    } else {
        vec![0.0, 0.002, 0.005, 0.01, 0.02]
    }
}

/// Mean downtime of a failed node, in slots.
const MEAN_DOWNTIME_SLOTS: f64 = 20.0;

fn resilience_scenario(failure_rate: f64) -> Scenario {
    bench_scenario(6.0).with_failures(failure_rate, MEAN_DOWNTIME_SLOTS)
}

fn main() {
    let reward = RewardConfig::default();
    let rates = failure_rates();

    // Train on a failing network (mid-sweep rate) so disruption episodes
    // land in the replay buffer.
    let train_rate = 0.01;
    eprintln!("[fig12] training DRL at failure rate {train_rate}…");
    let trained = train_drl(
        &resilience_scenario(train_rate),
        reward,
        drl_default(),
        default_passes(),
    );

    let mut grid = ExperimentGrid::new("resilience")
        .reward(reward)
        .seeds(&eval_seeds())
        .policy_boxed("drl", factory_of(trained.policy))
        .policy("weighted-greedy", || {
            Box::new(WeightedGreedyPolicy::default())
        })
        .policy("first-fit", || Box::new(FirstFitPolicy))
        .policy("greedy-latency", || Box::new(GreedyLatencyPolicy));
    for &rate in &rates {
        grid = grid.scenario(format!("fail={rate}"), rate, resilience_scenario(rate));
    }
    let report = grid.run();

    // Band CSV (mean/std/ci95 for every summary metric, including the
    // disruption/recovery columns) + the machine-readable report.
    emit_sweep_csv("fig12_resilience.csv", &report);
    emit_report(&report);

    // Recovery digest: the columns the figure actually plots.
    let mut md = String::from("# Figure 12 — resilience vs failure rate\n\n");
    md.push_str(
        "| failure rate | policy | accept % | cost/slot ($) | disrupted | replace % | downtime (node-slots) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for a in &report.aggregates {
        let g = |name: &str| a.aggregate.mean(name);
        let _ = writeln!(
            md,
            "| {} | {} | {:.1} | {:.4} | {:.1} | {:.1} | {:.1} |",
            a.x,
            a.policy,
            100.0 * g("acceptance_ratio"),
            g("mean_slot_cost_usd"),
            g("flows_disrupted"),
            100.0 * g("replacement_success_rate"),
            g("downtime_slots"),
        );
    }
    emit_markdown("fig12_resilience.md", &md);
}
