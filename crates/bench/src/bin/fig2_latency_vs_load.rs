//! Figure 2 — mean end-to-end latency vs arrival rate λ, DRL vs baselines.
//!
//! Expected shape: greedy-latency lowest at low load; all heuristics'
//! latency grows with load as queues fill; DRL tracks the best heuristic
//! and degrades latest; random/first-fit/cloud-only are dominated.

use bench::{emit_sweep_csv, load_sweep_results};

fn main() {
    let sweep = load_sweep_results();
    emit_sweep_csv("fig2_latency_vs_load.csv", &sweep);
    // Human-readable digest.
    for (rate, results) in &sweep {
        let mut best = ("", f64::MAX);
        for r in results {
            if r.summary.mean_admission_latency_ms < best.1 {
                best = (&r.policy, r.summary.mean_admission_latency_ms);
            }
        }
        eprintln!(
            "[fig2] λ={rate:>4.1}: best latency {} ({:.2} ms)",
            best.0, best.1
        );
    }
}
