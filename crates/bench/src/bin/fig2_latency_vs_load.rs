//! Figure 2 — mean end-to-end latency vs arrival rate λ, DRL vs baselines,
//! mean ± 95% CI across the evaluation seeds.
//!
//! Expected shape: greedy-latency lowest at low load; all heuristics'
//! latency grows with load as queues fill; DRL tracks the best heuristic
//! and degrades latest; random/first-fit/cloud-only are dominated.

use bench::{best_per_coordinate, emit_sweep_csv, load_sweep_grid};

fn main() {
    let report = load_sweep_grid();
    emit_sweep_csv("fig2_latency_vs_load.csv", &report);
    // Human-readable digest: best mean latency per sweep coordinate.
    for (rate, best) in best_per_coordinate(&report, "mean_latency_ms") {
        eprintln!(
            "[fig2] λ={rate:>4.1}: best latency {} ({:.2} ± {:.2} ms)",
            best.policy,
            best.aggregate.mean("mean_latency_ms"),
            best.aggregate.get("mean_latency_ms").expect("metric").ci95,
        );
    }
}
