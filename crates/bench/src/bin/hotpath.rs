//! hotpath — the tracked decision/train-step throughput benchmark.
//!
//! Measures the two rates every training run lives and dies by:
//!
//! * **decisions/sec** — greedy action selection (`DqnAgent::act_greedy`)
//!   over realistic encoder states captured from a live simulation,
//! * **batched decisions/sec** — the same decisions answered through
//!   `DqnAgent::act_greedy_batch`: all captured states as rows of one
//!   matrix, ONE forward per round, mask-aware per-row argmax
//!   (action-parity with the per-decision loop asserted before timing),
//!   and
//! * **train-steps/sec** — full DQN learn steps (`DqnAgent::learn`:
//!   replay sample, batch assembly, double-DQN targets, forward/backward,
//!   clipped Adam update).
//!
//! Since the event-queue refactor the report also tracks the simulation
//! engine itself:
//!
//! * **events/sec** — lifecycle events (arrivals, decisions, departures,
//!   retire checks) popped per second by the discrete-event loop on a
//!   busy trace, and
//! * **idle slots/sec** — an idle-trace sparsity sweep: the same arrival
//!   prefix followed by a 10x-longer all-idle tail. The event engine
//!   pops the *same* events either way, so the tail must cost ~nothing —
//!   the report carries the measured idle-overhead ratio as evidence
//!   that sparse time is O(events), not O(slots) of work.
//!
//! And the serving layer (`crates/serve`):
//!
//! * **serve decisions/sec** — eight concurrent simulations sharing one
//!   policy server under `DecisionSemantics::SlotSnapshot`, their
//!   wavefronts fusing into wide forwards, against the same eight
//!   simulations each deciding sequentially on a private policy clone.
//!
//! Decisions and train steps are measured twice: once through the
//! optimized scratch-buffer engine, and once through a faithful replica
//! of the pre-optimization pipeline (allocate-per-call tensors, the naive
//! zero-skip matmul kernels preserved in [`nn::tensor::reference`],
//! cloned forward caches, cloned replay batches); the batched series is
//! compared against the optimized per-decision path. The baseline is
//! *recomputed in the same report*, so `BENCH_hotpath.json` always
//! carries its own before/after evidence and the speedups are robust to
//! whatever machine CI lands on.
//!
//! The report also soft-compares against the previous run's file (log
//! only, never failing) so regressions are visible in CI output.

use bench::{bench_scenario, dqn_config, out_path, scaled};
use drl_vnf_edge::nn::optimizer::clip_global_norm;
use drl_vnf_edge::nn::tensor::reference;
use drl_vnf_edge::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Captured decision points: `(encoded_state, mask)` pairs from a live
/// placement run, so both paths are timed on the states the engine
/// actually produces (one-hot-heavy, ~half zeros).
struct CapturePolicy {
    inner: FirstFitPolicy,
    contexts: Vec<(Vec<f32>, Vec<bool>)>,
}

impl PlacementPolicy for CapturePolicy {
    fn name(&self) -> String {
        "capture-first-fit".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, rng: &mut StdRng) -> PlacementAction {
        self.contexts
            .push((ctx.encoded_state.clone(), ctx.mask.clone()));
        self.inner.decide(ctx, rng)
    }
}

/// The pre-optimization Q-network execution path, replayed against the
/// *same parameters* as the optimized agent: per-call allocation
/// everywhere, reference kernels (with their historical `a == 0.0` skip
/// branch), materialized activation derivatives, cloned forward caches.
struct BaselineNet {
    layers: Vec<(Matrix, Matrix, Activation)>,
}

impl BaselineNet {
    fn from_qnet(net: &QNetwork) -> Self {
        match net {
            QNetwork::Standard(mlp) => Self {
                layers: mlp
                    .layers()
                    .iter()
                    .map(|l| (l.weights().clone(), l.bias().clone(), l.activation()))
                    .collect(),
            },
            QNetwork::Dueling { .. } => {
                panic!("hotpath baseline models the standard MLP head (the headline config)")
            }
        }
    }

    /// Pre-optimization batched forward: fresh matrices per layer.
    fn forward(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for (w, b, act) in &self.layers {
            let z = reference::add_row_broadcast(&reference::matmul(&a, w), b);
            a = act.apply(&z);
        }
        a
    }

    /// Pre-optimization single-state path: `Matrix::row_vector` staging +
    /// allocating forward + `to_vec` of the output row.
    fn q_row(&self, state: &[f32]) -> Vec<f32> {
        self.forward(&Matrix::row_vector(state)).row(0).to_vec()
    }

    fn act_greedy(&self, state: &[f32], mask: &[bool]) -> usize {
        let q = self.q_row(state);
        masked_argmax(&q, mask).expect("some action valid")
    }

    /// Pre-optimization training forward: clones the input and keeps the
    /// pre-activation per layer, exactly like the old `Dense::forward_train`.
    #[allow(clippy::type_complexity)]
    fn forward_train(&self, x: &Matrix) -> (Matrix, Vec<(Matrix, Matrix)>) {
        let mut a = x.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for (w, b, act) in &self.layers {
            let z = reference::add_row_broadcast(&reference::matmul(&a, w), b);
            let out = act.apply(&z);
            caches.push((a.clone(), z));
            a = out;
        }
        (a, caches)
    }

    /// One pre-optimization learn step: cloned replay batch, fresh batch
    /// matrices, allocating double-DQN targets, materialized derivative +
    /// hadamard backward, fresh gradient matrices, clip, Adam.
    fn learn(
        &mut self,
        target: &BaselineNet,
        replay: &mut UniformReplay,
        optimizer: &mut Optimizer,
        config: &DqnConfig,
        action_count: usize,
        rng: &mut StdRng,
    ) -> f32 {
        let batch = replay.sample(config.batch_size, rng);
        let n = batch.transitions.len();
        let state_dim = self.layers[0].0.rows();

        let mut states = Matrix::zeros(n, state_dim);
        let mut next_states = Matrix::zeros(n, state_dim);
        for (r, t) in batch.transitions.iter().enumerate() {
            states.row_mut(r).copy_from_slice(&t.state);
            next_states.row_mut(r).copy_from_slice(&t.next_state);
        }

        let q_next_target = target.forward(&next_states);
        let q_next_online = self.forward(&next_states); // double DQN
        let all_valid = vec![true; action_count];
        let mut actions = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for (r, t) in batch.transitions.iter().enumerate() {
            actions.push(t.action);
            let future = if t.done {
                0.0
            } else {
                let mask = t.next_mask().unwrap_or(&all_valid);
                match masked_argmax(q_next_online.row(r), mask) {
                    Some(a_star) => q_next_target.get(r, a_star),
                    None => 0.0,
                }
            };
            targets.push(t.reward + config.gamma * future);
        }

        let (pred, caches) = self.forward_train(&states);
        let (loss, grad_out) = config
            .loss
            .evaluate_selected(&pred, &actions, &targets, None);

        // Backward, fresh matrices per layer.
        let mut grads: Vec<(Matrix, Matrix)> = Vec::with_capacity(self.layers.len());
        let mut g = grad_out;
        for ((w, _, act), (input, z)) in self.layers.iter().zip(caches.iter()).rev() {
            let grad_z = g.hadamard(&act.derivative(z));
            grads.push((reference::tmatmul(input, &grad_z), grad_z.col_sum()));
            g = reference::matmul_t(&grad_z, w);
        }
        grads.reverse();

        if let Some(limit) = config.max_grad_norm {
            let mut refs: Vec<&mut Matrix> = Vec::with_capacity(grads.len() * 2);
            for (gw, gb) in grads.iter_mut() {
                refs.push(gw);
                refs.push(gb);
            }
            clip_global_norm(&mut refs, limit);
        }
        optimizer.begin_step();
        for (i, ((w, b, _), (gw, gb))) in self.layers.iter_mut().zip(grads.iter()).enumerate() {
            optimizer.update(2 * i, w, gw);
            optimizer.update(2 * i + 1, b, gb);
        }
        loss
    }
}

fn rate(count: usize, secs: f64) -> f64 {
    count as f64 / secs.max(1e-9)
}

fn json_rates(decisions_per_sec: f64, train_steps_per_sec: f64) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    m.insert(
        "decisions_per_sec",
        serde_json::Value::from(decisions_per_sec),
    );
    m.insert(
        "train_steps_per_sec",
        serde_json::Value::from(train_steps_per_sec),
    );
    serde_json::Value::Object(m)
}

fn main() {
    let started = Instant::now();

    // ---- Capture realistic decision contexts from a live simulation.
    let mut scenario = bench_scenario(6.0);
    scenario.horizon_slots = 10;
    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let state_dim = sim.encoder.dim();
    let action_count = sim.action_space.len();
    let mut capture = CapturePolicy {
        inner: FirstFitPolicy,
        contexts: Vec::new(),
    };
    sim.run(&mut capture, 0);
    let contexts = capture.contexts;
    assert!(
        contexts.len() >= 16,
        "capture run produced only {} decision contexts",
        contexts.len()
    );
    eprintln!(
        "[hotpath] captured {} contexts (state_dim={state_dim}, actions={action_count})",
        contexts.len()
    );

    // ---- Agent under test: the evaluation's reference DQN (Table 2).
    let config = DqnConfig {
        learn_start: 1,
        epsilon: EpsilonSchedule::Constant(0.0),
        ..dqn_config()
    };
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let mut agent = DqnAgent::new(config.clone(), state_dim, action_count, &mut rng);

    // Fill replay with transitions stitched from consecutive contexts.
    let replay_fill = 2_048.min(config.replay_capacity);
    let mut baseline_replay = UniformReplay::new(config.replay_capacity);
    for i in 0..replay_fill {
        let (s, m) = &contexts[i % contexts.len()];
        let (s2, m2) = &contexts[(i + 1) % contexts.len()];
        let action = m.iter().position(|&ok| ok).expect("some action valid");
        let t = Transition::with_mask(
            s.clone(),
            action,
            0.25 * (i % 5) as f32 - 0.5,
            s2.clone(),
            i % 9 == 0,
            m2.clone(),
        );
        baseline_replay.push(t.clone());
        agent.observe(t, &mut rng);
    }

    // ---- Baseline replica on the agent's exact parameters.
    let baseline_net = BaselineNet::from_qnet(agent.online_network());

    // Sanity: the two paths must agree decision-for-decision before any
    // timing is trusted.
    for (s, m) in &contexts {
        assert_eq!(
            agent.act_greedy(s, m),
            baseline_net.act_greedy(s, m),
            "optimized and baseline paths disagree — timing would be meaningless"
        );
    }

    // ---- decisions/sec.
    let timing_reps = 8;
    let decision_rounds = scaled(500, 100);
    let total_decisions = decision_rounds * contexts.len();

    // The batched series: all captured contexts as the rows of one
    // matrix, answered by `act_greedy_batch`'s single forward per round.
    // Parity is asserted before timing — the batched selection must be
    // bit-identical to the per-decision loop (rows are independent under
    // the kernels).
    let mut batch_states = Matrix::default();
    batch_states.begin_rows(contexts.len(), state_dim);
    let mut batch_masks: Vec<bool> = Vec::with_capacity(contexts.len() * action_count);
    for (s, m) in &contexts {
        batch_states.push_row(s);
        batch_masks.extend_from_slice(m);
    }
    let mut batch_actions = Vec::new();
    agent.act_greedy_batch(&batch_states, &batch_masks, &mut batch_actions);
    for (i, (s, m)) in contexts.iter().enumerate() {
        assert_eq!(
            batch_actions[i],
            agent.act_greedy(s, m),
            "batched and per-decision selection disagree — timing would be meaningless"
        );
    }

    // The three decision series are timed as best-of-N *interleaved*
    // repetitions: the container shares its core, so contention arrives
    // in bursts longer than one measurement; interleaving puts every
    // series inside each burst-free window, and the per-series max is the
    // standard low-noise estimator. The trend gate downstream needs
    // stable rates (and above all a stable batched/per-decision ratio),
    // not averaged-in neighbor noise.
    let mut sink = 0usize;
    let mut optimized_decisions = 0.0f64;
    let mut baseline_decisions = 0.0f64;
    let mut batched_decisions = 0.0f64;
    for _ in 0..timing_reps {
        let t0 = Instant::now();
        for _ in 0..decision_rounds {
            for (s, m) in &contexts {
                sink = sink.wrapping_add(agent.act_greedy(s, m));
            }
        }
        optimized_decisions =
            optimized_decisions.max(rate(total_decisions, t0.elapsed().as_secs_f64()));

        let t0 = Instant::now();
        for _ in 0..decision_rounds {
            for (s, m) in &contexts {
                sink = sink.wrapping_add(baseline_net.act_greedy(s, m));
            }
        }
        baseline_decisions =
            baseline_decisions.max(rate(total_decisions, t0.elapsed().as_secs_f64()));

        let t0 = Instant::now();
        for _ in 0..decision_rounds {
            agent.act_greedy_batch(&batch_states, &batch_masks, &mut batch_actions);
            sink = sink.wrapping_add(batch_actions[0]);
        }
        batched_decisions =
            batched_decisions.max(rate(total_decisions, t0.elapsed().as_secs_f64()));
    }
    std::hint::black_box(sink);

    // ---- train-steps/sec: best-of-N interleaved like the decision
    // series — this series is CI-gated too, so it gets the same noise
    // treatment. Training keeps learning across repetitions (the agents'
    // per-step cost does not depend on training progress), and the
    // baseline's target-sync cadence runs on its global step count.
    let train_steps = scaled(200, 20);
    let total_train_steps = timing_reps * train_steps;
    let mut train_rng = StdRng::seed_from_u64(0xD1CE);
    let mut baseline_train_net = BaselineNet::from_qnet(agent.online_network());
    let mut baseline_target_net = BaselineNet::from_qnet(agent.online_network());
    let mut baseline_opt = config.optimizer.build();
    let mut baseline_train_rng = StdRng::seed_from_u64(0xD1CE);
    let mut baseline_step = 0u64;
    let mut optimized_train = 0.0f64;
    let mut baseline_train = 0.0f64;
    for _ in 0..timing_reps {
        let t0 = Instant::now();
        for _ in 0..train_steps {
            std::hint::black_box(agent.learn(&mut train_rng));
        }
        optimized_train = optimized_train.max(rate(train_steps, t0.elapsed().as_secs_f64()));

        let t0 = Instant::now();
        for _ in 0..train_steps {
            std::hint::black_box(baseline_train_net.learn(
                &baseline_target_net,
                &mut baseline_replay,
                &mut baseline_opt,
                &config,
                action_count,
                &mut baseline_train_rng,
            ));
            // Periodic hard target sync, exactly as the pre-optimization
            // learn performed it (a full parameter clone every
            // target_sync_every learn steps) — the optimized agent does
            // the same internally.
            baseline_step += 1;
            if config.target_sync_every > 0
                && baseline_step.is_multiple_of(config.target_sync_every)
            {
                baseline_target_net.layers = baseline_train_net.layers.clone();
            }
        }
        baseline_train = baseline_train.max(rate(train_steps, t0.elapsed().as_secs_f64()));
    }

    let decision_speedup = optimized_decisions / baseline_decisions.max(1e-9);
    let batched_speedup = batched_decisions / optimized_decisions.max(1e-9);
    let train_speedup = optimized_train / baseline_train.max(1e-9);
    eprintln!(
        "[hotpath] decisions/sec: {optimized_decisions:.0} vs baseline {baseline_decisions:.0} ({decision_speedup:.2}x)"
    );
    eprintln!(
        "[hotpath] batched decisions/sec: {batched_decisions:.0} ({batched_speedup:.2}x over the per-decision path)"
    );
    eprintln!(
        "[hotpath] train-steps/sec: {optimized_train:.1} vs baseline {baseline_train:.1} ({train_speedup:.2}x)"
    );

    // ---- events/sec + the idle-trace sparsity sweep.
    //
    // Both runs replay the SAME deterministic arrival prefix; the sparse
    // run then idles for 10x the horizon. The event queue pops an
    // identical event sequence either way (idle slots schedule nothing),
    // so any extra wall clock on the long run is pure per-slot billing
    // overhead — the ratio is the O(events)-not-O(slots) evidence.
    let active_slots: u64 = 20;
    let idle_factor: u64 = 10;
    let mut requests = Vec::new();
    for slot in 0..active_slots {
        for k in 0..4u64 {
            let i = slot * 4 + k;
            requests.push(Request::new(
                RequestId(i),
                ChainId((i % 4) as usize),
                edgenet::node::NodeId((i % 4) as usize),
                slot,
                1 + ((i * 7) % 4) as u32,
            ));
        }
    }
    let busy_trace = Trace {
        requests: requests.clone(),
        horizon_slots: active_slots,
    };
    let idle_trace = Trace {
        requests,
        horizon_slots: active_slots * idle_factor,
    };
    let event_scenario = {
        let mut s = bench_scenario(6.0);
        s.horizon_slots = active_slots;
        s
    };
    let timed_run = |trace: &Trace| -> (f64, u64, u64) {
        let mut sim = Simulation::new(&event_scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let t0 = Instant::now();
        let _ = sim.run_trace(trace, &mut policy, 0);
        (
            t0.elapsed().as_secs_f64(),
            sim.events_processed(),
            sim.metrics().slots().len() as u64,
        )
    };
    // Interleaved best-of, like every other series: the ratio needs both
    // walls sampled inside the same contention-free window.
    let mut busy_wall = f64::INFINITY;
    let mut idle_wall = f64::INFINITY;
    let mut busy_events = 0u64;
    let mut idle_events = 0u64;
    let mut idle_slots = 0u64;
    for _ in 0..timing_reps {
        let (w, e, _) = timed_run(&busy_trace);
        busy_wall = busy_wall.min(w);
        busy_events = e;
        let (w, e, s) = timed_run(&idle_trace);
        idle_wall = idle_wall.min(w);
        idle_events = e;
        idle_slots = s;
    }
    // The tail drains flows still alive at the short horizon (departures
    // plus their retire checks) but schedules nothing per slot: the extra
    // pops are bounded by the arrival count, not the idle slot count.
    let extra_events = idle_events.saturating_sub(busy_events);
    assert!(
        extra_events < (idle_factor - 1) * active_slots,
        "idle tail popped {extra_events} extra events — that smells like per-slot work"
    );
    let events_per_sec = rate(busy_events as usize, busy_wall);
    let idle_slots_per_sec = rate(idle_slots as usize, idle_wall);
    let idle_overhead_ratio = idle_wall / busy_wall.max(1e-9);
    eprintln!(
        "[hotpath] events/sec: {events_per_sec:.0} ({busy_events} events over {active_slots} slots)"
    );
    eprintln!(
        "[hotpath] idle sweep: {idle_factor}x horizon costs {idle_overhead_ratio:.2}x wall \
         ({idle_slots_per_sec:.0} slots/sec billed; O(events), not O(slots))"
    );

    // ---- serve: cross-simulation fused decision serving.
    //
    // Eight concurrent simulations share ONE policy server; every slot's
    // decision wavefront crosses the ring and fuses with whatever the
    // other simulations have pending, so the server's forwards run wide
    // enough to hit the register-tiled kernels (a single simulation's
    // sub-8-row waves cannot). The baseline is the same eight
    // simulations each running per-decision sequential inference on a
    // private policy clone — the pre-serving deployment shape. The two
    // modes legitimately take different trajectories (snapshot vs
    // speculative semantics), so each side counts its own decisions.
    let serve_sims: usize = 8;
    let serve_seeds: Vec<u64> = (0..serve_sims as u64).collect();
    // A busy serving workload: wide per-slot wavefronts are the regime
    // the serving layer exists for (many users per simulation), and they
    // amortize the per-wave ring round-trip over more fused rows.
    let serve_scenario = {
        let mut s = bench_scenario(20.0);
        s.workload.mean_duration_slots = 4.0;
        s.horizon_slots = scaled(60, 15) as u64;
        s
    };
    let serve_policy = {
        let probe = Simulation::new(&serve_scenario, RewardConfig::default());
        let dim = probe.encoder.dim();
        let actions = probe.action_space.len();
        drop(probe);
        // A serving-scale Q-network: policy servers exist because the
        // served model is expensive — the fleet amortizes it. Twice the
        // reference width keeps the per-decision forward honest for the
        // deployment shape this series models.
        let manager = DrlManagerConfig {
            dqn: DqnConfig {
                network: QNetworkConfig::Standard {
                    hidden: vec![256, 256],
                },
                epsilon: EpsilonSchedule::Constant(0.0),
                ..dqn_config()
            },
            label: "drl".into(),
        };
        let mut serve_rng = StdRng::seed_from_u64(0x5EED);
        let mut p = DrlPolicy::new(manager, dim, actions, &mut serve_rng);
        p.set_training(false);
        p
    };
    let serve_cells = cells_for_seeds("hotpath-serve", 6.0, &serve_scenario, &serve_seeds);
    let serve_reps = 3;
    let mut baseline_serve_rate = 0.0f64;
    let mut serve_rate = 0.0f64;
    let mut serve_stats = ServeStats::default();
    for _ in 0..serve_reps {
        let t0 = Instant::now();
        let counts = run_indexed_with(
            serve_sims,
            serve_sims,
            || {
                let mut worker = serve_policy.clone();
                worker.set_batched_inference(false);
                worker
            },
            |worker, index| {
                let mut sim = Simulation::new(&serve_scenario, RewardConfig::default());
                sim.drive(
                    RunInput::Generated,
                    worker,
                    RunOptions::new().with_seed_offset(serve_seeds[index]),
                );
                sim.metrics().decision_count()
            },
        );
        let total: u64 = counts.iter().sum();
        baseline_serve_rate =
            baseline_serve_rate.max(rate(total as usize, t0.elapsed().as_secs_f64()));

        let t0 = Instant::now();
        let (_, stats) = serve_evaluations(
            serve_policy.clone(),
            ServeConfig::default(),
            RewardConfig::default(),
            &serve_cells,
            Some(serve_sims),
            DecisionSemantics::SlotSnapshot,
        );
        serve_rate = serve_rate.max(rate(stats.decisions as usize, t0.elapsed().as_secs_f64()));
        serve_stats = stats;
    }
    let serve_speedup = serve_rate / baseline_serve_rate.max(1e-9);
    eprintln!(
        "[hotpath] serve decisions/sec: {serve_rate:.0} vs {baseline_serve_rate:.0} per-sim sequential \
         ({serve_speedup:.2}x at {serve_sims} sims; {:.1} mean rows/forward, widest {})",
        serve_stats.mean_rows_per_tick(),
        serve_stats.max_rows_per_tick
    );

    // ---- Soft comparison against the previous run (log-only: machine
    // noise must never fail CI, it just has to be visible there).
    let report_path = out_path("BENCH_hotpath.json");
    if let Ok(text) = std::fs::read_to_string(&report_path) {
        if let Ok(prev) = serde_json::from_str(&text) {
            let prev: serde_json::Value = prev;
            if let Some(prev_rate) = prev
                .get("optimized")
                .and_then(|o| o.get("decisions_per_sec"))
                .and_then(serde_json::Value::as_f64)
            {
                let ratio = optimized_decisions / prev_rate.max(1e-9);
                let verdict = if ratio < 0.9 {
                    "REGRESSION (>10% slower — investigate)"
                } else if ratio > 1.1 {
                    "improvement"
                } else {
                    "steady"
                };
                eprintln!(
                    "[hotpath] vs previous run: {ratio:.2}x decisions/sec ({verdict}; previous {prev_rate:.0}/s)"
                );
            }
        }
    } else {
        eprintln!("[hotpath] no previous BENCH_hotpath.json — starting the trajectory");
    }

    // ---- Emit the report.
    let mut cfg = serde_json::Map::new();
    cfg.insert("state_dim", serde_json::Value::from(state_dim as u64));
    cfg.insert("action_count", serde_json::Value::from(action_count as u64));
    cfg.insert(
        "batch_size",
        serde_json::Value::from(config.batch_size as u64),
    );
    cfg.insert("contexts", serde_json::Value::from(contexts.len() as u64));
    cfg.insert(
        "decisions_timed",
        serde_json::Value::from(total_decisions as u64),
    );
    cfg.insert("batch_rows", serde_json::Value::from(contexts.len() as u64));
    cfg.insert(
        "train_steps_timed",
        serde_json::Value::from(total_train_steps as u64),
    );

    let mut speedup = serde_json::Map::new();
    speedup.insert("decisions", serde_json::Value::from(decision_speedup));
    speedup.insert(
        "batched_decisions",
        serde_json::Value::from(batched_speedup),
    );
    speedup.insert("train_steps", serde_json::Value::from(train_speedup));

    let mut doc = serde_json::Map::new();
    doc.insert("schema_version", serde_json::Value::from(1u64));
    doc.insert("name", serde_json::Value::from("hotpath"));
    doc.insert("config", serde_json::Value::Object(cfg));
    doc.insert("baseline", json_rates(baseline_decisions, baseline_train));
    let optimized = {
        let mut m = match json_rates(optimized_decisions, optimized_train) {
            serde_json::Value::Object(m) => m,
            _ => unreachable!("json_rates builds an object"),
        };
        m.insert(
            "batched_decisions_per_sec",
            serde_json::Value::from(batched_decisions),
        );
        m.insert("events_per_sec", serde_json::Value::from(events_per_sec));
        m.insert(
            "idle_slots_per_sec",
            serde_json::Value::from(idle_slots_per_sec),
        );
        m.insert(
            "serve_decisions_per_sec",
            serde_json::Value::from(serve_rate),
        );
        serde_json::Value::Object(m)
    };
    doc.insert("optimized", optimized);
    let serve = {
        let mut m = serde_json::Map::new();
        m.insert(
            "concurrent_sims",
            serde_json::Value::from(serve_sims as u64),
        );
        m.insert(
            "baseline_decisions_per_sec",
            serde_json::Value::from(baseline_serve_rate),
        );
        m.insert(
            "serve_decisions_per_sec",
            serde_json::Value::from(serve_rate),
        );
        m.insert("speedup", serde_json::Value::from(serve_speedup));
        m.insert("ticks", serde_json::Value::from(serve_stats.ticks));
        m.insert(
            "mean_rows_per_tick",
            serde_json::Value::from(serve_stats.mean_rows_per_tick()),
        );
        m.insert(
            "max_rows_per_tick",
            serde_json::Value::from(serve_stats.max_rows_per_tick),
        );
        serde_json::Value::Object(m)
    };
    doc.insert("serve", serve);
    let sparse = {
        let mut m = serde_json::Map::new();
        m.insert("active_slots", serde_json::Value::from(active_slots));
        m.insert("idle_factor", serde_json::Value::from(idle_factor));
        m.insert("events", serde_json::Value::from(busy_events));
        m.insert("busy_wall_secs", serde_json::Value::from(busy_wall));
        m.insert("idle_wall_secs", serde_json::Value::from(idle_wall));
        m.insert(
            "idle_overhead_ratio",
            serde_json::Value::from(idle_overhead_ratio),
        );
        serde_json::Value::Object(m)
    };
    doc.insert("sparse", sparse);
    doc.insert("speedup", serde_json::Value::Object(speedup));
    doc.insert(
        "wall_clock_secs",
        serde_json::Value::from(started.elapsed().as_secs_f64()),
    );

    write_lines(
        &report_path,
        &[serde_json::to_string_pretty(&serde_json::Value::Object(
            doc,
        ))],
    )
    .expect("write BENCH_hotpath.json");
    eprintln!(
        "[hotpath] wrote {} ({:.2}s wall)",
        report_path.display(),
        started.elapsed().as_secs_f64()
    );
}
