//! Table 2 — DQN hyperparameters of the DRL manager.

use bench::{dqn_config, emit_markdown};
use drl_vnf_edge::prelude::*;

fn main() {
    let c = dqn_config();
    let mut md =
        String::from("# Table 2 — DQN hyperparameters\n\n| hyperparameter | value |\n|---|---|\n");
    match &c.network {
        QNetworkConfig::Standard { hidden } => {
            md.push_str(&format!(
                "| network | MLP, hidden layers {hidden:?}, ReLU |\n"
            ));
        }
        QNetworkConfig::Dueling { trunk, head } => {
            md.push_str(&format!(
                "| network | dueling, trunk {trunk:?}, heads {head} |\n"
            ));
        }
    }
    md.push_str(&format!("| discount γ | {} |\n", c.gamma));
    match c.optimizer {
        OptimizerConfig::Adam {
            lr, beta1, beta2, ..
        } => {
            md.push_str(&format!(
                "| optimizer | Adam (lr {lr}, β₁ {beta1}, β₂ {beta2}) |\n"
            ));
        }
        OptimizerConfig::RmsProp { lr, rho, .. } => {
            md.push_str(&format!("| optimizer | RMSProp (lr {lr}, ρ {rho}) |\n"));
        }
        OptimizerConfig::Sgd { lr, momentum } => {
            md.push_str(&format!(
                "| optimizer | SGD (lr {lr}, momentum {momentum}) |\n"
            ));
        }
    }
    md.push_str(&format!("| loss | {:?} |\n", c.loss));
    md.push_str(&format!(
        "| gradient clip (global L2) | {:?} |\n",
        c.max_grad_norm
    ));
    md.push_str(&format!("| replay capacity | {} |\n", c.replay_capacity));
    md.push_str(&format!("| batch size | {} |\n", c.batch_size));
    md.push_str(&format!(
        "| learn start | {} transitions |\n",
        c.learn_start
    ));
    md.push_str(&format!(
        "| target sync | every {} learn steps |\n",
        c.target_sync_every
    ));
    md.push_str(&format!("| double DQN | {} |\n", c.double));
    md.push_str(&format!(
        "| prioritized replay | {} |\n",
        c.prioritized.is_some()
    ));
    match c.epsilon {
        EpsilonSchedule::Linear { start, end, steps } => {
            md.push_str(&format!(
                "| ε schedule | linear {start} → {end} over {steps} steps |\n"
            ));
        }
        other => md.push_str(&format!("| ε schedule | {other:?} |\n")),
    }
    md.push_str("| training passes | 8 over the horizon (fresh trace each) |\n");
    emit_markdown("table2_hyperparams.md", &md);
}
