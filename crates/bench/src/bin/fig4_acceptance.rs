//! Figure 4 — request acceptance ratio vs arrival rate λ.
//!
//! Expected shape: near 1.0 for everyone below the capacity knee, then
//! degrading at overload; DRL and the packing-aware heuristics degrade
//! last; policies ignoring capacity (cloud-only excepted — the cloud is
//! effectively infinite) drop first.

use bench::{emit_sweep_csv, load_sweep_results};

fn main() {
    let sweep = load_sweep_results();
    emit_sweep_csv("fig4_acceptance.csv", &sweep);
    for (rate, results) in &sweep {
        for r in results {
            if r.summary.acceptance_ratio < 0.999 {
                eprintln!(
                    "[fig4] λ={rate:>4.1}: {} accepts {:.1}%",
                    r.policy,
                    100.0 * r.summary.acceptance_ratio
                );
            }
        }
    }
}
