//! Figure 4 — request acceptance ratio vs arrival rate λ,
//! mean ± 95% CI across the evaluation seeds.
//!
//! Expected shape: near 1.0 for everyone below the capacity knee, then
//! degrading at overload; DRL and the packing-aware heuristics degrade
//! last; policies ignoring capacity (cloud-only excepted — the cloud is
//! effectively infinite) drop first.

use bench::{emit_sweep_csv, load_sweep_grid};

fn main() {
    let report = load_sweep_grid();
    emit_sweep_csv("fig4_acceptance.csv", &report);
    for a in &report.aggregates {
        let acc = a.aggregate.get("acceptance_ratio").expect("metric");
        if acc.mean < 0.999 {
            eprintln!(
                "[fig4] λ={:>4.1}: {} accepts {:.1} ± {:.1}%",
                a.x,
                a.policy,
                100.0 * acc.mean,
                100.0 * acc.ci95,
            );
        }
    }
}
