//! Figure 6 — effect of SFC length (1–6 VNFs) on latency and cost.
//!
//! Builds a synthetic chain catalog where chain *k* has *k* VNFs drawn
//! from the standard light-to-medium types, trains one DRL manager on the
//! uniform mix, then evaluates every policy on single-length workloads —
//! one grid row per length, multi-seed bands per cell.
//!
//! Expected shape: latency and cost grow roughly linearly with chain
//! length for all policies; the gap between placement-aware policies and
//! random/first-fit widens with length (more decisions to get wrong).

use bench::sweep_grids::synthetic_chains;
use bench::{
    comparison_factories, default_passes, drl_default, emit_csv, emit_report, eval_seeds,
    factory_of, fast_mode, scaled,
};
use drl_vnf_edge::prelude::*;

fn main() {
    let max_len = if fast_mode() { 3 } else { 6 };
    let vnfs = VnfCatalog::standard();
    let chains = synthetic_chains(&vnfs, max_len);
    let reward = RewardConfig::default();

    let mut scenario = Scenario::default_metro().with_arrival_rate(5.0);
    scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    scenario.horizon_slots = scaled(240, 30) as u64;
    scenario.workload.chain_mix = vec![1.0; max_len];

    eprintln!("[fig6] training DRL on the uniform length mix…");
    let trained = train_drl_with_catalogs(
        &scenario,
        reward,
        drl_default(),
        default_passes().min(6),
        &vnfs,
        &chains,
    );

    // One grid row per chain length: workload concentrated on that length.
    let mut grid = ExperimentGrid::new("fig6_chain_length")
        .reward(reward)
        .seeds(&eval_seeds())
        .with_catalogs(vnfs, chains)
        .policy_boxed("drl", factory_of(trained.policy))
        .policies(comparison_factories());
    for len in 1..=max_len {
        let mut s = scenario.clone();
        s.workload.chain_mix = (0..max_len)
            .map(|i| if i + 1 == len { 1.0 } else { 0.0 })
            .collect();
        grid = grid.scenario(format!("len={len}"), len as f64, s);
    }
    let report = grid.run();
    emit_csv("fig6_chain_length.csv", &sweep_csv(&report));
    emit_report(&report);
}
