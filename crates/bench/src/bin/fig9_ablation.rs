//! Figure 9 / Ablation — what each DQN ingredient buys: experience replay,
//! the target network, double-Q, dueling heads, prioritized replay. The
//! six variants train concurrently on the engine's pool and share one
//! multi-seed evaluation grid.
//!
//! Expected shape: removing replay or the target network slows and
//! destabilizes convergence (lower, noisier final return); double/dueling
//! match or slightly improve the base agent.

use bench::{
    bench_scenario, default_passes, dqn_config, emit_csv, emit_markdown, emit_report, eval_seeds,
    factory_of,
};
use drl_vnf_edge::prelude::*;

fn ablations() -> Vec<DrlManagerConfig> {
    let base = dqn_config();
    vec![
        DrlManagerConfig {
            dqn: base.clone(),
            label: "full".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                replay_capacity: 1,
                batch_size: 1,
                learn_start: 1,
                ..base.clone()
            },
            label: "no-replay".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                target_sync_every: 0,
                soft_tau: None,
                ..base.clone()
            },
            label: "no-target-net".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                double: false,
                ..base.clone()
            },
            label: "no-double".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                network: QNetworkConfig::Dueling {
                    trunk: vec![128],
                    head: 64,
                },
                ..base.clone()
            },
            label: "dueling".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                prioritized: Some(PerConfig::default()),
                ..base
            },
            label: "prioritized".into(),
        },
    ]
}

fn main() {
    let scenario = bench_scenario(8.0);
    let reward = RewardConfig::default();

    let configs = ablations();
    eprintln!(
        "[fig9] training {} ablations on {} threads…",
        configs.len(),
        thread_count()
    );
    let trained = parallel_map(&configs, |_, config| {
        let label = config.label.clone();
        let t = train_drl(&scenario, reward, config.clone(), default_passes().min(6));
        eprintln!("[fig9] {label}: trained");
        (label, t)
    });

    let mut curve_lines = vec!["variant,episode,smoothed_return".to_string()];
    let mut final_returns = Vec::new();
    for (label, t) in &trained {
        let smoothed = moving_average(&t.episode_returns, 200);
        for (i, &s) in smoothed.iter().enumerate() {
            if i % 20 == 0 {
                curve_lines.push(format!("{label},{i},{s:.4}"));
            }
        }
        let tail = &smoothed[smoothed.len().saturating_sub(200)..];
        let final_return = tail.iter().sum::<f32>() / tail.len().max(1) as f32;
        final_returns.push((label.clone(), final_return));
    }
    emit_csv("fig9_ablation_curves.csv", &curve_lines);

    let mut grid = ExperimentGrid::new("fig9_ablation")
        .scenario("lambda=8", 8.0, scenario)
        .reward(reward)
        .seeds(&eval_seeds());
    for (label, t) in trained {
        grid = grid.policy_boxed(label, factory_of(t.policy));
    }
    let report = grid.run();

    let mut md = String::from("# Figure 9 — DQN ablation\n\n");
    md.push_str("| variant | final smoothed return |\n|---|---|\n");
    for (label, ret) in &final_returns {
        md.push_str(&format!("| {label} | {ret:.3} |\n"));
    }
    md.push('\n');
    let rows: Vec<(String, SummaryAggregate)> = report
        .aggregates
        .iter()
        .map(|a| (a.policy.clone(), a.aggregate.clone()))
        .collect();
    md.push_str(&markdown_aggregate_comparison(&rows));
    emit_markdown("fig9_ablation.md", &md);
    emit_report(&report);
}
