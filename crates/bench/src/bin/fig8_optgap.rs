//! Figure 8 — optimality gap on tiny instances: DRL and heuristics vs the
//! exhaustive lookahead comparator (3 edge sites + cloud, short chains),
//! multi-seed: the gap is now a mean over the evaluation seeds instead of
//! a single-trace sample.
//!
//! Expected shape: exhaustive sets the reference combined objective; DRL
//! lands within ~5–15%; weighted-greedy close behind; first-fit and
//! random show large gaps.

use bench::{
    default_passes, drl_default, emit_markdown, emit_report, eval_seeds, factory_of, scaled,
};
use drl_vnf_edge::prelude::*;

fn tiny_scenario() -> Scenario {
    let mut s = Scenario::default_metro().with_arrival_rate(3.0);
    s.topology = TopologySpec::Metro { sites: 3 };
    s.topology_builder.edge_capacity = edgenet::node::Resources::new(16.0, 64.0);
    s.horizon_slots = scaled(240, 30) as u64;
    // Short chains only: voip (2 VNFs) and web (3 VNFs) keep the
    // exhaustive enumeration tractable (4^3 = 64 sequences max).
    s.workload.chain_mix = vec![1.0, 1.0, 0.0, 0.0];
    s
}

fn main() {
    let scenario = tiny_scenario();
    let reward = RewardConfig::default();

    eprintln!("[fig8] training DRL on the tiny instance…");
    let trained = train_drl(&scenario, reward, drl_default(), default_passes());

    // The exhaustive policy needs simulator components.
    let probe = Simulation::new(&scenario, reward);
    let mean_duration_s = scenario.workload.mean_duration_slots * scenario.slot_seconds;
    let exhaustive = ExhaustivePolicy::new(
        probe.topology().clone(),
        probe.routes().clone(),
        probe.vnfs.clone(),
        scenario.prices,
        mean_duration_s,
    );
    drop(probe);

    let report = ExperimentGrid::new("fig8_optgap")
        .scenario("tiny", 3.0, scenario)
        .reward(reward)
        .seeds(&eval_seeds())
        .policy_boxed("exhaustive", factory_of(exhaustive))
        .policy_boxed("drl", factory_of(trained.policy))
        .policy("weighted-greedy", || {
            Box::new(WeightedGreedyPolicy::default())
        })
        .policy("first-fit", || Box::new(FirstFitPolicy))
        .policy("random", || Box::new(RandomPolicy))
        .run();

    let reference = report.aggregates[0].aggregate.combined_objective(1.0, 1.0);
    let rows: Vec<(String, SummaryAggregate)> = report
        .aggregates
        .iter()
        .map(|a| (a.policy.clone(), a.aggregate.clone()))
        .collect();
    let mut md = String::from("# Figure 8 — optimality gap vs exhaustive (tiny instance)\n\n");
    md.push_str(&markdown_aggregate_comparison(&rows));
    md.push_str("\n| policy | combined objective | gap vs exhaustive |\n|---|---|---|\n");
    for a in &report.aggregates {
        let obj = a.aggregate.combined_objective(1.0, 1.0);
        md.push_str(&format!(
            "| {} | {:.2} | {:+.1}% |\n",
            a.policy,
            obj,
            100.0 * (obj - reference) / reference
        ));
    }
    emit_markdown("fig8_optgap.md", &md);
    emit_report(&report);
}
