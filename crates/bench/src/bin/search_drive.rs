//! Automated configuration search over a checked-in scenario manifest:
//! expands the manifest, screens every (reward point, scenario, policy)
//! candidate on a cheap seed prefix, promotes the top fraction to the
//! full seed budget (successive halving), and reports the healthiest
//! configuration found.
//!
//! Outputs (under `RESULTS_DIR`, default `results/`):
//!
//! * `BENCH_search_<name>.json` — canonical machine-readable search
//!   report (byte-identical across runs and `EXPER_THREADS` values).
//! * `search_<name>_frontier.csv` — every candidate, healthiest first.
//! * `search_<name>.md` — human-readable frontier table + provenance.

use bench::manifests::{
    checked_in_manifest, checked_in_manifest_names, load_checked_manifest, manifest_dir,
    pretrained_trainer,
};
use bench::{emit_csv, emit_markdown, fast_mode, results_dir};
use drl_vnf_edge::prelude::*;
use std::fmt::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: search_drive <manifest-name>\n\
         \x20      search_drive --write-manifests\n\
         \n\
         Checked-in manifests: {}\n\
         Env: FAST=1 (smoke sizes), EXPER_THREADS=<n>, RESULTS_DIR=<dir>,\n\
         \x20    MANIFEST_DIR=<dir> (default: manifests)",
        checked_in_manifest_names().join(", ")
    );
    std::process::exit(2);
}

/// Regenerates every checked-in manifest JSON file from its in-code
/// definition (the recovery path after an intentional definition edit).
fn write_manifests() {
    let dir = manifest_dir();
    for &name in checked_in_manifest_names() {
        let manifest = checked_in_manifest(name).expect("registered name");
        let path = dir.join(format!("{name}.json"));
        write_lines(&path, &[serde_json::to_string_pretty(&manifest.to_json())])
            .expect("write manifest file");
        eprintln!(
            "[search] wrote {} ({})",
            path.display(),
            manifest.fingerprint()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--write-manifests" => {
                write_manifests();
                return;
            }
            "-h" | "--help" => usage(),
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(name) = name else { usage() };

    let manifest = load_checked_manifest(&name);
    eprintln!(
        "[search] manifest `{}` ({}), fast={}",
        manifest.name,
        manifest.fingerprint(),
        fast_mode()
    );
    let mut trainer = pretrained_trainer(&manifest);
    let driver = SearchDriver::new(manifest);
    let outcome = driver.run_with(fast_mode(), &mut trainer);

    let report = outcome.to_report(driver.health());
    let path = report
        .write_canonical_to(&results_dir())
        .expect("write search report");
    eprintln!(
        "[search] wrote {} ({} candidates, {}/{} runs)",
        path.display(),
        report.candidates.len(),
        report.runs_evaluated,
        report.runs_exhaustive
    );

    let ranking = outcome.ranking();
    let mut csv = vec![
        "rank,alpha,beta,scenario,policy,x,seeds_run,screened_health,promoted,health".to_string(),
    ];
    for (rank, &i) in ranking.iter().enumerate() {
        let c = &outcome.candidates[i];
        csv.push(format!(
            "{},{},{},{},{},{},{},{:.4},{},{:.4}",
            rank + 1,
            c.alpha,
            c.beta,
            c.scenario,
            c.policy,
            c.x,
            c.seeds_run,
            c.screened_health,
            c.promoted,
            c.health,
        ));
    }
    emit_csv(&format!("search_{name}_frontier.csv"), &csv);

    let best = outcome.best_candidate();
    let mut md = String::new();
    let _ = writeln!(md, "# Search: {name}\n");
    let _ = writeln!(
        md,
        "- manifest fingerprint: `{}`",
        report.manifest_fingerprint
    );
    let _ = writeln!(
        md,
        "- halving: screen {} seed(s), promote top {:.0}% to {} seed(s)",
        report.screen_seeds,
        100.0 * report.promote_fraction,
        report.full_seeds
    );
    let _ = writeln!(
        md,
        "- budget: {} of {} exhaustive (cell × seed) runs ({:.0}%)",
        report.runs_evaluated,
        report.runs_exhaustive,
        100.0 * report.runs_evaluated as f64 / report.runs_exhaustive as f64
    );
    let _ = writeln!(
        md,
        "- best: **{}** @ {} (α={}, β={}) with health {:.4}\n",
        best.policy, best.scenario, best.alpha, best.beta, best.health
    );
    md.push_str("| rank | α | β | scenario | policy | screened | promoted | seeds | health |\n");
    md.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for (rank, &i) in ranking.iter().enumerate() {
        let c = &outcome.candidates[i];
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {:.4} | {} | {} | {:.4} |",
            rank + 1,
            c.alpha,
            c.beta,
            c.scenario,
            c.policy,
            c.screened_health,
            if c.promoted { "yes" } else { "no" },
            c.seeds_run,
            c.health,
        );
    }
    emit_markdown(&format!("search_{name}.md"), &md);
}
