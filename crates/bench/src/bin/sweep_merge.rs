//! Merges a sharded sweep's fragments back into one canonical
//! `BENCH_<name>.json` — byte-identical to what a single-process
//! `ExperimentGrid::run` of the same grid would have produced.
//!
//! ```text
//! sweep_merge --grid fig2_load --of 4
//! ```
//!
//! Rebuilds the registry grid (for its cell count and structural
//! fingerprint), loads the `N` fragments from `results/shards/`, and
//! refuses to merge on any mismatch — schema version, grid name,
//! fingerprint, shard count, or incomplete/duplicated cell coverage. A
//! refused merge exits non-zero with the reason; it never writes a
//! partial report.

use bench::sweep_grids::{build_sweep_grid, sweep_grid_names};
use sweep::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: sweep_merge --grid <name> --of <n>\n       grids: {}",
        sweep_grid_names().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut grid_name = None;
    let mut of = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--grid" => grid_name = Some(value),
            "--of" => of = value.parse::<usize>().ok(),
            _ => usage(),
        }
    }
    let (Some(grid_name), Some(of)) = (grid_name, of) else {
        usage();
    };
    if of == 0 {
        usage();
    }
    let Some(grid) = build_sweep_grid(&grid_name) else {
        eprintln!(
            "[sweep_merge] unknown grid {grid_name:?}; known: {}",
            sweep_grid_names().join(", ")
        );
        std::process::exit(2);
    };

    let results = bench::results_dir();
    let dir = shards_dir(&results);
    let mut fragments = Vec::with_capacity(of);
    for shard_id in 0..of {
        let path = dir.join(fragment_file_name(&grid_name, shard_id, of));
        match load_fragment(&path) {
            Some(frag) => fragments.push(frag),
            None => {
                eprintln!(
                    "[sweep_merge] missing or unreadable fragment {}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }

    match merge_fragments(
        grid.grid_name(),
        grid.grid_fingerprint(),
        grid.cell_count(),
        &fragments,
    ) {
        Ok(report) => {
            let path = report
                .write_canonical_to(&results)
                .expect("write merged report");
            eprintln!(
                "[sweep_merge] wrote {} ({} cells from {} shards)",
                path.display(),
                report.cells.len(),
                of
            );
        }
        Err(e) => {
            eprintln!("[sweep_merge] refused: {e}");
            std::process::exit(1);
        }
    }
}
