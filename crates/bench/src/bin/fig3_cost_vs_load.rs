//! Figure 3 — mean per-slot operational cost vs arrival rate λ.
//!
//! Expected shape: cost grows roughly linearly with load for all
//! policies; greedy-latency pays a growing premium (it spawns instances
//! wherever latency is lowest); cloud-only pays the cloud-traffic premium;
//! DRL and weighted-greedy sit lowest.

use bench::{emit_sweep_csv, load_sweep_results};

fn main() {
    let sweep = load_sweep_results();
    emit_sweep_csv("fig3_cost_vs_load.csv", &sweep);
    for (rate, results) in &sweep {
        let mut best = ("", f64::MAX);
        for r in results {
            if r.summary.mean_slot_cost_usd < best.1 {
                best = (&r.policy, r.summary.mean_slot_cost_usd);
            }
        }
        eprintln!(
            "[fig3] λ={rate:>4.1}: best cost {} (${:.4}/slot)",
            best.0, best.1
        );
    }
}
