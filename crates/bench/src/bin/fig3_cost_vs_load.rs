//! Figure 3 — mean per-slot operational cost vs arrival rate λ,
//! mean ± 95% CI across the evaluation seeds.
//!
//! Expected shape: cost grows roughly linearly with load for all
//! policies; greedy-latency pays a growing premium (it spawns instances
//! wherever latency is lowest); cloud-only pays the cloud-traffic premium;
//! DRL and weighted-greedy sit lowest.

use bench::{best_per_coordinate, emit_sweep_csv, load_sweep_grid};

fn main() {
    let report = load_sweep_grid();
    emit_sweep_csv("fig3_cost_vs_load.csv", &report);
    for (rate, best) in best_per_coordinate(&report, "mean_slot_cost_usd") {
        eprintln!(
            "[fig3] λ={rate:>4.1}: best cost {} (${:.4} ± {:.4}/slot)",
            best.policy,
            best.aggregate.mean("mean_slot_cost_usd"),
            best.aggregate
                .get("mean_slot_cost_usd")
                .expect("metric")
                .ci95,
        );
    }
}
