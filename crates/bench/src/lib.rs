//! # bench — experiment harness shared utilities
//!
//! Presets and plumbing shared by the `fig*`/`table*` binaries that
//! regenerate every figure and table of the evaluation (see DESIGN.md §4
//! for the experiment index). Binaries write CSV/markdown into
//! `results/` (override with the `RESULTS_DIR` environment variable).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use mano::prelude::*;
use rl::dqn::DqnConfig;
use rl::qnet::QNetworkConfig;
use rl::replay::PerConfig;
use rl::schedule::EpsilonSchedule;
use std::path::PathBuf;

/// Directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Resolve an output file inside [`results_dir`].
pub fn out_path(name: &str) -> PathBuf {
    results_dir().join(name)
}

/// Scale factor for experiment sizes: `FAST=1` shrinks horizons/passes for
/// smoke runs (used by integration tests); unset runs at full size.
pub fn fast_mode() -> bool {
    std::env::var_os("FAST").is_some_and(|v| v == "1")
}

/// Shrinks `full` when [`fast_mode`] is active.
pub fn scaled(full: usize, fast: usize) -> usize {
    if fast_mode() {
        fast
    } else {
        full
    }
}

/// The evaluation's reference DQN configuration (Table 2).
pub fn dqn_config() -> DqnConfig {
    DqnConfig {
        network: QNetworkConfig::Standard {
            hidden: vec![128, 128],
        },
        gamma: 0.95,
        optimizer: nn::prelude::OptimizerConfig::adam(5e-4),
        loss: nn::prelude::Loss::Huber(1.0),
        max_grad_norm: Some(10.0),
        replay_capacity: 50_000,
        batch_size: 32,
        learn_start: 500,
        train_every: 1,
        target_sync_every: 250,
        soft_tau: None,
        double: true,
        prioritized: None,
        epsilon: EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.05,
            steps: 20_000,
        },
    }
}

/// DRL manager variants used in the convergence/ablation figures.
pub fn drl_variants() -> Vec<DrlManagerConfig> {
    let base = dqn_config();
    vec![
        DrlManagerConfig {
            dqn: DqnConfig {
                double: false,
                ..base.clone()
            },
            label: "dqn".into(),
        },
        DrlManagerConfig {
            dqn: base.clone(),
            label: "double-dqn".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                network: QNetworkConfig::Dueling {
                    trunk: vec![128],
                    head: 64,
                },
                ..base.clone()
            },
            label: "dueling-dqn".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                prioritized: Some(PerConfig::default()),
                ..base
            },
            label: "per-dqn".into(),
        },
    ]
}

/// The headline DRL manager (Double DQN, uniform replay).
pub fn drl_default() -> DrlManagerConfig {
    DrlManagerConfig {
        dqn: dqn_config(),
        label: "drl".into(),
    }
}

/// Training passes used by the headline experiments.
pub fn default_passes() -> usize {
    scaled(8, 1)
}

/// Prints and persists a markdown document.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_markdown(name: &str, content: &str) {
    println!("{content}");
    write_lines(out_path(name), &[content.to_string()]).expect("write results file");
    eprintln!("[bench] wrote {}", out_path(name).display());
}

/// Persists CSV lines and logs the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_csv(name: &str, lines: &[String]) {
    write_lines(out_path(name), lines).expect("write results file");
    eprintln!(
        "[bench] wrote {} ({} rows)",
        out_path(name).display(),
        lines.len().saturating_sub(1)
    );
}

/// The evaluation scenario: 8 metro sites + cloud with moderately scarce
/// edge capacity (32 vCPU / 128 GB per site) so load actually pressures
/// placement, at the given constant arrival rate.
pub fn bench_scenario(rate: f64) -> Scenario {
    let mut s = Scenario::default_metro().with_arrival_rate(rate);
    s.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    s.horizon_slots = scaled(360, 40) as u64;
    s
}

/// Trains the headline DRL manager for `scenario`.
pub fn train_headline(scenario: &Scenario) -> TrainedDrl {
    train_drl(
        scenario,
        RewardConfig::default(),
        drl_default(),
        default_passes(),
    )
}

/// Runs the λ sweep shared by figures 2–4: the DRL manager is trained once
/// at the high end of the sweep (standard practice — the observation
/// includes utilization, so one policy generalizes across loads), then
/// every policy is evaluated on identical traces at each rate.
pub fn load_sweep_results() -> Vec<(f64, Vec<PolicyResult>)> {
    let rates = load_sweep_rates();
    let train_rate = *rates.last().expect("non-empty sweep") * 0.8;
    eprintln!("[sweep] training DRL at rate {train_rate:.1}…");
    let mut trained = train_headline(&bench_scenario(train_rate));
    let reward = RewardConfig::default();
    rates
        .into_iter()
        .map(|rate| {
            eprintln!("[sweep] evaluating at rate {rate:.1}…");
            let scenario = bench_scenario(rate);
            let mut results = vec![evaluate_policy(&scenario, reward, &mut trained.policy, 777)];
            for mut p in comparison_baselines() {
                results.push(evaluate_policy(&scenario, reward, p.as_mut(), 777));
            }
            (rate, results)
        })
        .collect()
}

/// Emits one sweep CSV (all summary columns at each sweep coordinate).
pub fn emit_sweep_csv(name: &str, sweep: &[(f64, Vec<PolicyResult>)]) {
    let mut lines = vec![summary_csv_header().to_string()];
    for (x, results) in sweep {
        for r in results {
            lines.push(summary_csv_row(&r.policy, *x, &r.summary));
        }
    }
    emit_csv(name, &lines);
}

/// The λ sweep (requests per slot) shared by figures 2-4.
pub fn load_sweep_rates() -> Vec<f64> {
    if fast_mode() {
        vec![2.0, 6.0]
    } else {
        vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
    }
}

/// Builds the boxed baseline set used by comparison figures (a subset of
/// `standard_baselines` that keeps plots readable).
pub fn comparison_baselines() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(RandomPolicy),
        Box::new(FirstFitPolicy),
        Box::new(GreedyLatencyPolicy),
        Box::new(GreedyCostPolicy),
        Box::new(CloudOnlyPolicy),
        Box::new(WeightedGreedyPolicy::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        dqn_config().validate();
        for v in drl_variants() {
            v.dqn.validate();
        }
    }

    #[test]
    fn variant_labels_unique() {
        let labels: Vec<String> = drl_variants().into_iter().map(|v| v.label).collect();
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn sweep_rates_increasing() {
        let rates = load_sweep_rates();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }
}
