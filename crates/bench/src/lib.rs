//! # bench — experiment harness shared utilities
//!
//! Presets and plumbing shared by the `fig*`/`table*` binaries that
//! regenerate every figure and table of the evaluation (see DESIGN.md §4
//! for the experiment index). Binaries write CSV/markdown plus a
//! machine-readable `BENCH_<name>.json` into `results/` (override with
//! the `RESULTS_DIR` environment variable) and fan their evaluation grids
//! out through the [`exper`] engine (`EXPER_THREADS` controls workers).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod manifests;
pub mod summary;
pub mod sweep_grids;
pub mod trend;

use exper::prelude::*;
use mano::prelude::*;
use rl::dqn::DqnConfig;
use rl::qnet::QNetworkConfig;
use rl::replay::PerConfig;
use rl::schedule::EpsilonSchedule;
use std::path::PathBuf;

/// Directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Resolve an output file inside [`results_dir`].
pub fn out_path(name: &str) -> PathBuf {
    results_dir().join(name)
}

/// Scale factor for experiment sizes: `FAST=1` shrinks horizons/passes for
/// smoke runs (used by integration tests); unset runs at full size.
pub fn fast_mode() -> bool {
    std::env::var_os("FAST").is_some_and(|v| v == "1")
}

/// Shrinks `full` when [`fast_mode`] is active.
pub fn scaled(full: usize, fast: usize) -> usize {
    if fast_mode() {
        fast
    } else {
        full
    }
}

/// The evaluation's reference DQN configuration (Table 2).
pub fn dqn_config() -> DqnConfig {
    DqnConfig {
        network: QNetworkConfig::Standard {
            hidden: vec![128, 128],
        },
        gamma: 0.95,
        optimizer: nn::prelude::OptimizerConfig::adam(5e-4),
        loss: nn::prelude::Loss::Huber(1.0),
        max_grad_norm: Some(10.0),
        replay_capacity: 50_000,
        batch_size: 32,
        learn_start: 500,
        train_every: 1,
        target_sync_every: 250,
        soft_tau: None,
        double: true,
        prioritized: None,
        epsilon: EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.05,
            steps: 20_000,
        },
    }
}

/// DRL manager variants used in the convergence/ablation figures.
pub fn drl_variants() -> Vec<DrlManagerConfig> {
    let base = dqn_config();
    vec![
        DrlManagerConfig {
            dqn: DqnConfig {
                double: false,
                ..base.clone()
            },
            label: "dqn".into(),
        },
        DrlManagerConfig {
            dqn: base.clone(),
            label: "double-dqn".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                network: QNetworkConfig::Dueling {
                    trunk: vec![128],
                    head: 64,
                },
                ..base.clone()
            },
            label: "dueling-dqn".into(),
        },
        DrlManagerConfig {
            dqn: DqnConfig {
                prioritized: Some(PerConfig::default()),
                ..base
            },
            label: "per-dqn".into(),
        },
    ]
}

/// The headline DRL manager (Double DQN, uniform replay).
pub fn drl_default() -> DrlManagerConfig {
    DrlManagerConfig {
        dqn: dqn_config(),
        label: "drl".into(),
    }
}

/// Training passes used by the headline experiments.
pub fn default_passes() -> usize {
    scaled(8, 1)
}

/// Prints and persists a markdown document.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_markdown(name: &str, content: &str) {
    println!("{content}");
    write_lines(out_path(name), &[content.to_string()]).expect("write results file");
    eprintln!("[bench] wrote {}", out_path(name).display());
}

/// Persists CSV lines and logs the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_csv(name: &str, lines: &[String]) {
    write_lines(out_path(name), lines).expect("write results file");
    eprintln!(
        "[bench] wrote {} ({} rows)",
        out_path(name).display(),
        lines.len().saturating_sub(1)
    );
}

/// The evaluation scenario: 8 metro sites + cloud with moderately scarce
/// edge capacity (32 vCPU / 128 GB per site) so load actually pressures
/// placement, at the given constant arrival rate.
pub fn bench_scenario(rate: f64) -> Scenario {
    let mut s = Scenario::default_metro().with_arrival_rate(rate);
    s.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    s.horizon_slots = scaled(360, 40) as u64;
    s
}

/// Trains the headline DRL manager for `scenario`.
pub fn train_headline(scenario: &Scenario) -> TrainedDrl {
    train_drl(
        scenario,
        RewardConfig::default(),
        drl_default(),
        default_passes(),
    )
}

/// Workload seed offsets every evaluation grid runs across. The paper's
/// curves were single-seed; mean ± 95% CI across these seeds is a strict
/// upgrade. `FAST=1` keeps two seeds so smoke runs still exercise the
/// multi-seed path.
pub fn eval_seeds() -> Vec<u64> {
    if fast_mode() {
        vec![101, 102]
    } else {
        vec![101, 102, 103, 104, 105]
    }
}

/// Wraps a clonable policy as a per-cell grid factory: each cell gets its
/// own clone, so stateful policies never share state across cells.
pub fn factory_of<P>(policy: P) -> PolicyFactory
where
    P: PlacementPolicy + Clone + Send + Sync + 'static,
{
    Box::new(move || Box::new(policy.clone()))
}

/// The comparison baseline set as labelled grid factories.
pub fn comparison_factories() -> Vec<(String, PolicyFactory)> {
    vec![
        ("random".into(), factory_of(RandomPolicy)),
        ("first-fit".into(), factory_of(FirstFitPolicy)),
        ("greedy-latency".into(), factory_of(GreedyLatencyPolicy)),
        ("greedy-cost".into(), factory_of(GreedyCostPolicy)),
        ("cloud-only".into(), factory_of(CloudOnlyPolicy)),
        (
            "weighted-greedy".into(),
            factory_of(WeightedGreedyPolicy::default()),
        ),
    ]
}

/// Every standard baseline as labelled grid factories (Table 3).
pub fn standard_factories() -> Vec<(String, PolicyFactory)> {
    vec![
        ("random".into(), factory_of(RandomPolicy)),
        ("first-fit".into(), factory_of(FirstFitPolicy)),
        ("best-fit".into(), factory_of(BestFitPolicy)),
        ("worst-fit".into(), factory_of(WorstFitPolicy)),
        ("greedy-latency".into(), factory_of(GreedyLatencyPolicy)),
        ("greedy-cost".into(), factory_of(GreedyCostPolicy)),
        ("cloud-only".into(), factory_of(CloudOnlyPolicy)),
        (
            "weighted-greedy".into(),
            factory_of(WeightedGreedyPolicy::default()),
        ),
    ]
}

/// Writes `BENCH_<name>.json` for an engine run into [`results_dir`] and
/// logs the throughput line CI tracks.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_report(report: &BenchReport) {
    let path = report.write_to(&results_dir()).expect("write BENCH json");
    eprintln!(
        "[bench] wrote {} ({} cells on {} threads, {:.2}s wall, {:.0} slots/s)",
        path.display(),
        report.cells.len(),
        report.threads,
        report.wall_clock_secs,
        report.throughput_slots_per_sec,
    );
}

/// Emits a band CSV (mean/std/ci95 per metric) from a grid report.
pub fn emit_sweep_csv(name: &str, report: &BenchReport) {
    emit_csv(name, &sweep_csv(report));
}

/// For each distinct sweep coordinate of `report` (in first-appearance
/// order), the aggregate whose *mean* of `metric` is lowest — the shared
/// "best policy per λ" digest of the sweep figures.
///
/// # Panics
///
/// Panics on an unknown metric name.
pub fn best_per_coordinate<'a>(
    report: &'a BenchReport,
    metric: &str,
) -> Vec<(f64, &'a BenchAggregate)> {
    let mut coordinates: Vec<f64> = Vec::new();
    for a in &report.aggregates {
        if !coordinates.contains(&a.x) {
            coordinates.push(a.x);
        }
    }
    coordinates
        .into_iter()
        .map(|x| {
            let best = report
                .aggregates
                .iter()
                .filter(|a| a.x == x)
                .min_by(|a, b| {
                    a.aggregate
                        .mean(metric)
                        .total_cmp(&b.aggregate.mean(metric))
                })
                .expect("coordinate came from this aggregate list");
            (x, best)
        })
        .collect()
}

/// `true` unless `EXPER_SWEEP_CACHE=0`: figures 2–4 share one λ-sweep
/// grid, so the first binary to run computes and persists it and the
/// other two reuse the identical cached cells instead of retraining.
pub fn sweep_cache_enabled() -> bool {
    std::env::var_os("EXPER_SWEEP_CACHE").is_none_or(|v| v != "0")
}

/// Runs (or reuses) the λ sweep shared by figures 2–4: the DRL manager is
/// trained once at the high end of the sweep (standard practice — the
/// observation includes utilization, so one policy generalizes across
/// loads), then every policy × rate × seed cell runs through the engine.
///
/// The report is cached as `BENCH_load_sweep.json` keyed by a
/// configuration fingerprint; a cache hit returns cells bit-identical to
/// a fresh run (the JSON round-trip is exact).
pub fn load_sweep_grid() -> BenchReport {
    let rates = load_sweep_rates();
    let seeds = eval_seeds();
    let train_rate = *rates.last().expect("non-empty sweep") * 0.8;
    // The fingerprint must cover everything that changes the cells:
    // sweep shape, seed axis, training budget, scenario, the trained
    // manager's full config, the reward, and the policy roster.
    let policy_roster: Vec<String> = std::iter::once("drl".to_string())
        .chain(comparison_factories().into_iter().map(|(label, _)| label))
        .collect();
    let fingerprint = format!(
        "load_sweep;v1;rates={rates:?};seeds={seeds:?};passes={};scenario={:?};drl={:?};reward={:?};policies={policy_roster:?}",
        default_passes(),
        bench_scenario(train_rate),
        drl_default(),
        RewardConfig::default(),
    );
    if sweep_cache_enabled() {
        if let Some(cached) = load_bench_report(&results_dir(), "load_sweep") {
            if cached.fingerprint == fingerprint {
                eprintln!("[sweep] reusing cached BENCH_load_sweep.json");
                return cached;
            }
        }
    }
    eprintln!("[sweep] training DRL at rate {train_rate:.1}…");
    let trained = train_headline(&bench_scenario(train_rate));
    let mut grid = ExperimentGrid::new("load_sweep")
        .seeds(&seeds)
        .fingerprint(fingerprint)
        .policy_boxed("drl", factory_of(trained.policy))
        .policies(comparison_factories());
    for &rate in &rates {
        grid = grid.scenario(format!("lambda={rate}"), rate, bench_scenario(rate));
    }
    let report = grid.run();
    emit_report(&report);
    report
}

/// The λ sweep (requests per slot) shared by figures 2-4.
pub fn load_sweep_rates() -> Vec<f64> {
    if fast_mode() {
        vec![2.0, 6.0]
    } else {
        vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
    }
}

/// Builds the boxed baseline set used by comparison figures (a subset of
/// `standard_baselines` that keeps plots readable).
pub fn comparison_baselines() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(RandomPolicy),
        Box::new(FirstFitPolicy),
        Box::new(GreedyLatencyPolicy),
        Box::new(GreedyCostPolicy),
        Box::new(CloudOnlyPolicy),
        Box::new(WeightedGreedyPolicy::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        dqn_config().validate();
        for v in drl_variants() {
            v.dqn.validate();
        }
    }

    #[test]
    fn variant_labels_unique() {
        let labels: Vec<String> = drl_variants().into_iter().map(|v| v.label).collect();
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn sweep_rates_increasing() {
        let rates = load_sweep_rates();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn eval_seeds_distinct_and_multi() {
        let seeds = eval_seeds();
        assert!(seeds.len() >= 2, "error bands need at least two seeds");
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len());
    }

    #[test]
    fn factory_labels_match_policy_names() {
        for (label, factory) in comparison_factories()
            .into_iter()
            .chain(standard_factories())
        {
            assert_eq!(label, factory().name(), "grid label must equal name()");
        }
    }
}
