//! Registry of sharded-sweep grids: named, self-contained grid builders
//! every process in a sweep can reconstruct identically.
//!
//! The sweep protocol never ships a grid over the wire — a worker is told
//! only a *name* (plus its shard coordinate) and rebuilds the grid from
//! this registry. That works because each builder here is a pure function
//! of the name and the `FAST` mode: same name, same process environment,
//! same grid, same structural fingerprint. The fingerprint
//! (`ExperimentGrid::auto_fingerprint`) is stamped on every plan and
//! fragment so a merge refuses cells computed from a drifted registry
//! (e.g. a worker built without `FAST=1` feeding a `FAST=1` driver).
//!
//! Registry grids are baseline-only by design: DRL policies would require
//! every worker to train (duplicating the most expensive phase N times)
//! or a trained-weights shipping format — the multi-host outlook in
//! `docs/sweep.md` covers that extension.

use crate::{
    bench_scenario, comparison_factories, eval_seeds, fast_mode, load_sweep_rates, scaled,
    standard_factories,
};
use exper::prelude::*;
use mano::prelude::*;
use sfc::chain::{ChainCatalog, ChainId, ChainSpec};
use sfc::vnf::VnfCatalog;

/// Every grid name [`build_sweep_grid`] accepts.
pub fn sweep_grid_names() -> &'static [&'static str] {
    &["fig2_load", "fig6_chains", "table3_baselines"]
}

/// Builds the named sweep grid with its structural fingerprint attached,
/// or `None` for an unknown name.
pub fn build_sweep_grid(name: &str) -> Option<ExperimentGrid> {
    let grid = match name {
        "fig2_load" => fig2_load(),
        "fig6_chains" => fig6_chains(),
        "table3_baselines" => table3_baselines(),
        _ => return None,
    };
    let fp = grid.auto_fingerprint();
    Some(grid.fingerprint(fp))
}

/// The λ-sweep comparison grid (figure 2 axes, baseline roster): every
/// comparison baseline across [`load_sweep_rates`] × [`eval_seeds`].
fn fig2_load() -> ExperimentGrid {
    let mut grid = ExperimentGrid::new("fig2_load")
        .seeds(&eval_seeds())
        .policies(comparison_factories());
    for &rate in &load_sweep_rates() {
        grid = grid.scenario(format!("lambda={rate}"), rate, bench_scenario(rate));
    }
    grid
}

/// The chain-length grid (figure 6 axes, baseline roster): one scenario
/// per chain length on the synthetic length-k catalog.
fn fig6_chains() -> ExperimentGrid {
    let max_len = if fast_mode() { 3 } else { 6 };
    let vnfs = VnfCatalog::standard();
    let chains = synthetic_chains(&vnfs, max_len);

    let mut scenario = Scenario::default_metro().with_arrival_rate(5.0);
    scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    scenario.horizon_slots = scaled(240, 30) as u64;

    let mut grid = ExperimentGrid::new("fig6_chains")
        .seeds(&eval_seeds())
        .with_catalogs(vnfs, chains)
        .policies(comparison_factories());
    for len in 1..=max_len {
        let mut s = scenario.clone();
        s.workload.chain_mix = (0..max_len)
            .map(|i| if i + 1 == len { 1.0 } else { 0.0 })
            .collect();
        grid = grid.scenario(format!("len={len}"), len as f64, s);
    }
    grid
}

/// The full baseline roster at the table 3 operating point (λ=8).
fn table3_baselines() -> ExperimentGrid {
    ExperimentGrid::new("table3_baselines")
        .seeds(&eval_seeds())
        .policies(standard_factories())
        .scenario("lambda=8", 8.0, bench_scenario(8.0))
}

/// The synthetic per-length chain catalog shared by the fig6 binary and
/// the `fig6_chains` sweep grid: chain *k* has *k* VNFs drawn in a fixed
/// light-to-medium order, with a latency budget that grows with length.
pub fn synthetic_chains(vnfs: &VnfCatalog, max_len: usize) -> ChainCatalog {
    let order = [
        "nat",
        "firewall",
        "load-balancer",
        "proxy",
        "encryption-gw",
        "wan-optimizer",
    ];
    let chains: Vec<ChainSpec> = (1..=max_len)
        .map(|len| {
            let seq = order[..len]
                .iter()
                .map(|n| vnfs.by_name(n).expect("standard catalog").id)
                .collect();
            ChainSpec::new(
                ChainId(len - 1),
                format!("len-{len}"),
                seq,
                40.0 + 25.0 * len as f64, // budget grows with length
                0.05,
                10.0,
            )
        })
        .collect();
    ChainCatalog::new(chains, vnfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_name_builds_with_a_fingerprint() {
        for &name in sweep_grid_names() {
            let grid = build_sweep_grid(name).expect("registry name builds");
            assert_eq!(grid.grid_name(), name, "grid is named after its key");
            assert!(grid.cell_count() > 0);
            assert!(
                grid.grid_fingerprint().starts_with(name),
                "auto fingerprint attached"
            );
        }
        assert!(build_sweep_grid("no_such_grid").is_none());
    }

    #[test]
    fn rebuilds_are_structurally_identical() {
        for &name in sweep_grid_names() {
            let a = build_sweep_grid(name).unwrap();
            let b = build_sweep_grid(name).unwrap();
            assert_eq!(
                a.grid_fingerprint(),
                b.grid_fingerprint(),
                "{name} must rebuild to the same structure in every process"
            );
        }
    }

    #[test]
    fn fingerprints_distinguish_grids() {
        let fps: Vec<String> = sweep_grid_names()
            .iter()
            .map(|n| build_sweep_grid(n).unwrap().grid_fingerprint().to_string())
            .collect();
        let set: std::collections::HashSet<_> = fps.iter().collect();
        assert_eq!(set.len(), fps.len());
    }
}
