//! Registry of sharded-sweep grids: named manifests every process in a
//! sweep can expand identically.
//!
//! The sweep protocol never ships a grid over the wire — a worker is told
//! only a *name* (plus its shard coordinate) and rebuilds the grid from
//! this registry. Since the manifest redesign the registry holds
//! [`ScenarioManifest`]s rather than hand-assembled builders: each entry
//! is a pure value, expansion is a pure function of `(manifest, FAST)`,
//! and the exact same manifests drive the in-process figure binaries and
//! the search driver, so the definitions can no longer drift apart. The
//! structural fingerprint (`ExperimentGrid::auto_fingerprint`) is stamped
//! on every plan and fragment so a merge refuses cells computed from a
//! drifted registry (e.g. a worker built without `FAST=1` feeding a
//! `FAST=1` driver).
//!
//! Registry grids are baseline-only by design: DRL policies would require
//! every worker to train (duplicating the most expensive phase N times)
//! or a trained-weights shipping format — the multi-host outlook in
//! `docs/sweep.md` covers that extension.

use crate::fast_mode;
use exper::prelude::*;

pub use exper::manifest::synthetic_chains;

/// Every grid name [`build_sweep_grid`] accepts.
pub fn sweep_grid_names() -> &'static [&'static str] {
    &["fig2_load", "fig6_chains", "table3_baselines"]
}

/// The named registry manifest, or `None` for an unknown name. The
/// expansion of each manifest is pinned by fingerprint tests: editing an
/// entry is a protocol change for every consumer of its name.
pub fn sweep_grid_manifest(name: &str) -> Option<ScenarioManifest> {
    let manifest = match name {
        // The λ-sweep comparison grid (figure 2 axes, baseline roster).
        "fig2_load" => ScenarioManifest::new(
            "fig2_load",
            ManifestBase::bench(8.0),
            SweepSpec::ArrivalRate {
                values: FastScaled {
                    full: Axis::List(vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]),
                    fast: Axis::List(vec![2.0, 6.0]),
                },
            },
        )
        .policy(PolicySpec::Roster("comparison".into())),
        // The chain-length grid (figure 6 axes) on the synthetic
        // length-k catalog, at λ=5 with a shorter horizon.
        "fig6_chains" => {
            let mut base = ManifestBase::bench(5.0);
            base.horizon_slots = FastScaled {
                full: 240,
                fast: 30,
            };
            ScenarioManifest::new(
                "fig6_chains",
                base,
                SweepSpec::ChainLength {
                    max: FastScaled { full: 6, fast: 3 },
                },
            )
            .policy(PolicySpec::Roster("comparison".into()))
        }
        // The full baseline roster at the table 3 operating point (λ=8).
        "table3_baselines" => ScenarioManifest::new(
            "table3_baselines",
            ManifestBase::bench(8.0),
            SweepSpec::ArrivalRate {
                values: FastScaled::same(Axis::single(8.0)),
            },
        )
        .policy(PolicySpec::Roster("standard".into())),
        _ => return None,
    };
    Some(manifest)
}

/// Builds the named sweep grid with its structural fingerprint attached,
/// or `None` for an unknown name — the manifest expansion for the current
/// `FAST` mode.
pub fn build_sweep_grid(name: &str) -> Option<ExperimentGrid> {
    let manifest = sweep_grid_manifest(name)?;
    let mut expansion = manifest.expand(fast_mode());
    Some(expansion.points.remove(0).grid())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_name_builds_with_a_fingerprint() {
        for &name in sweep_grid_names() {
            let grid = build_sweep_grid(name).expect("registry name builds");
            assert_eq!(grid.grid_name(), name, "grid is named after its key");
            assert!(grid.cell_count() > 0);
            assert!(
                grid.grid_fingerprint().starts_with(name),
                "auto fingerprint attached"
            );
        }
        assert!(build_sweep_grid("no_such_grid").is_none());
        assert!(sweep_grid_manifest("no_such_grid").is_none());
    }

    #[test]
    fn rebuilds_are_structurally_identical() {
        for &name in sweep_grid_names() {
            let a = build_sweep_grid(name).unwrap();
            let b = build_sweep_grid(name).unwrap();
            assert_eq!(
                a.grid_fingerprint(),
                b.grid_fingerprint(),
                "{name} must rebuild to the same structure in every process"
            );
        }
    }

    #[test]
    fn fingerprints_distinguish_grids() {
        let fps: Vec<String> = sweep_grid_names()
            .iter()
            .map(|n| build_sweep_grid(n).unwrap().grid_fingerprint().to_string())
            .collect();
        let set: std::collections::HashSet<_> = fps.iter().collect();
        assert_eq!(set.len(), fps.len());
    }

    /// The registry fingerprints are wire protocol: a worker built from
    /// one commit must be able to feed a driver built from another. These
    /// literals were captured from the pre-manifest hand-built grids; the
    /// manifest re-expression must reproduce them exactly, and any future
    /// edit that changes them is a breaking protocol change.
    #[test]
    fn registry_fingerprints_are_pinned() {
        let expected: &[(&str, &str)] = if fast_mode() {
            &[
                ("fig2_load", "fig2_load-4f100dca92353db9"),
                ("fig6_chains", "fig6_chains-a3fb29a759bcbd22"),
                ("table3_baselines", "table3_baselines-82b559ed8d801054"),
            ]
        } else {
            &[
                ("fig2_load", "fig2_load-439cad4f1329bb39"),
                ("fig6_chains", "fig6_chains-d4412765e40bd981"),
                ("table3_baselines", "table3_baselines-e1d81a8c389fc2f6"),
            ]
        };
        for &(name, fp) in expected {
            assert_eq!(
                build_sweep_grid(name).unwrap().grid_fingerprint(),
                fp,
                "{name} drifted from its pinned pre-manifest fingerprint"
            );
        }
    }

    #[test]
    fn registry_manifests_roundtrip_through_json() {
        for &name in sweep_grid_names() {
            let manifest = sweep_grid_manifest(name).unwrap();
            let text = serde_json::to_string_pretty(&manifest.to_json());
            let parsed = ScenarioManifest::parse(&text).expect("registry manifest parses");
            assert_eq!(parsed, manifest, "{name} JSON roundtrip");
        }
    }
}
