//! Markdown digest of the `BENCH_*.json` artifacts: the table CI appends
//! to `$GITHUB_STEP_SUMMARY` so headline rates are readable per run
//! without downloading the results artifact.

use std::path::Path;

/// One engine report's headline numbers.
#[derive(Debug, Clone, PartialEq)]
struct ReportLine {
    name: String,
    cells: usize,
    threads: u64,
    wall_clock_secs: f64,
    slots_per_sec: f64,
}

/// Renders the markdown digest of every `BENCH_*.json` in `dir`: a
/// headline table for the grid reports (cells, threads, wall clock,
/// slots/s) and, when present, dedicated tables for the hotpath
/// tracker's rates and speedups and the fig13 metro streaming sweep. Reports are listed in file-name order so
/// the output is stable; unparseable files are skipped with a note rather
/// than failing the summary.
pub fn results_markdown(dir: &Path) -> String {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();

    let mut grid_lines: Vec<ReportLine> = Vec::new();
    let mut searches: Vec<mano::report::SearchReport> = Vec::new();
    let mut hotpath: Option<serde_json::Value> = None;
    let mut metro: Option<serde_json::Value> = None;
    let mut skipped: Vec<String> = Vec::new();
    for name in &names {
        let Ok(text) = std::fs::read_to_string(dir.join(name)) else {
            skipped.push(name.clone());
            continue;
        };
        let Ok(doc) = serde_json::from_str(&text) else {
            skipped.push(name.clone());
            continue;
        };
        let doc: serde_json::Value = doc;
        if name == "BENCH_hotpath.json" {
            hotpath = Some(doc);
            continue;
        }
        if name == "BENCH_metro.json" {
            metro = Some(doc);
            continue;
        }
        if let Some(search) = name
            .strip_prefix("BENCH_search_")
            .and_then(|s| s.strip_suffix(".json"))
        {
            match mano::report::load_search_report(dir, search) {
                Some(report) => searches.push(report),
                None => skipped.push(name.clone()),
            }
            continue;
        }
        let cells = doc
            .get("cells")
            .and_then(serde_json::Value::as_array)
            .map(|a| a.len())
            .unwrap_or(0);
        grid_lines.push(ReportLine {
            name: name.clone(),
            cells,
            threads: doc
                .get("threads")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0),
            wall_clock_secs: doc
                .get("wall_clock_secs")
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0),
            slots_per_sec: doc
                .get("throughput_slots_per_sec")
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0),
        });
    }

    let mut out = String::from("## Bench results\n\n");
    let shards = shards_markdown(dir);
    if grid_lines.is_empty()
        && searches.is_empty()
        && hotpath.is_none()
        && metro.is_none()
        && shards.is_empty()
    {
        out.push_str("_no BENCH_*.json reports found_\n");
        return out;
    }
    if !grid_lines.is_empty() {
        out.push_str("| report | cells | threads | wall (s) | slots/s |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for line in &grid_lines {
            out.push_str(&format!(
                "| {} | {} | {} | {:.2} | {:.0} |\n",
                line.name, line.cells, line.threads, line.wall_clock_secs, line.slots_per_sec
            ));
        }
    }
    if let Some(doc) = &hotpath {
        let rate = |section: &str, key: &str| -> f64 {
            doc.get(section)
                .and_then(|s| s.get(key))
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0)
        };
        out.push_str("\n### Hotpath tracker (BENCH_hotpath.json)\n\n");
        out.push_str("| series | rate/s | vs pre-opt baseline |\n");
        out.push_str("|---|---:|---:|\n");
        out.push_str(&format!(
            "| decisions (per-decision) | {:.0} | {:.2}x |\n",
            rate("optimized", "decisions_per_sec"),
            rate("speedup", "decisions"),
        ));
        let batched = rate("optimized", "batched_decisions_per_sec");
        if batched > 0.0 {
            out.push_str(&format!(
                "| decisions (batched) | {batched:.0} | {:.2}x |\n",
                rate("speedup", "batched_decisions"),
            ));
        }
        out.push_str(&format!(
            "| train steps | {:.1} | {:.2}x |\n",
            rate("optimized", "train_steps_per_sec"),
            rate("speedup", "train_steps"),
        ));
    }
    if let Some(doc) = &metro {
        let num = |key: &str| -> f64 {
            doc.get(key)
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0)
        };
        out.push_str("\n### Metro streaming sweep (BENCH_metro.json)\n\n");
        out.push_str("| scale | requests | req/s | peak heap (MiB) |\n");
        out.push_str("|---:|---:|---:|---:|\n");
        if let Some(scales) = doc.get("scales").and_then(serde_json::Value::as_array) {
            for row in scales {
                let v = |key: &str| -> f64 {
                    row.get(key)
                        .and_then(serde_json::Value::as_f64)
                        .unwrap_or(0.0)
                };
                out.push_str(&format!(
                    "| {}x | {} | {:.0} | {:.1} |\n",
                    v("scale") as u64,
                    v("requests") as u64,
                    v("requests_per_sec"),
                    v("peak_mem_bytes") / (1024.0 * 1024.0),
                ));
            }
        }
        out.push_str(&format!(
            "\nacross the sweep: throughput {:.2}x, peak heap {:.2}x\n",
            num("throughput_ratio"),
            num("peak_mem_ratio"),
        ));
    }
    if !searches.is_empty() {
        out.push_str(&searches_markdown(&searches));
    }
    if !skipped.is_empty() {
        out.push_str(&format!(
            "\n_skipped unparseable: {}_\n",
            skipped.join(", ")
        ));
    }
    out.push_str(&shards);
    out
}

/// Digest of the manifest searches (`BENCH_search_*.json`): one row per
/// search with the winning cell and its composite health, plus a ⚠ line
/// whenever a search's recorded manifest fingerprint no longer matches
/// the checked-in manifest of the same name — that search's results
/// describe a manifest that has since been edited.
fn searches_markdown(searches: &[mano::report::SearchReport]) -> String {
    let mut out = String::from("\n### Manifest searches (BENCH_search_*.json)\n\n");
    out.push_str("| search | best policy | scenario | α | β | health | runs |\n");
    out.push_str("|---|---|---|---:|---:|---:|---:|\n");
    let mut warnings: Vec<String> = Vec::new();
    for report in searches {
        let best = report.best_candidate();
        out.push_str(&format!(
            "| {} | **{}** | {} | {} | {} | {:.4} | {}/{} |\n",
            report.name,
            best.policy,
            best.scenario,
            best.alpha,
            best.beta,
            best.health,
            report.runs_evaluated,
            report.runs_exhaustive,
        ));
        if let Some(expected) = checked_in_fingerprint(&report.name) {
            if expected != report.manifest_fingerprint {
                warnings.push(format!(
                    "`BENCH_search_{}.json`: manifest fingerprint {} does not match \
                     the checked-in `{}` manifest ({}) — the search ran against a \
                     manifest that has since changed",
                    report.name, report.manifest_fingerprint, report.name, expected
                ));
            }
        }
    }
    for w in &warnings {
        out.push_str(&format!("\n⚠ {w}\n"));
    }
    out
}

/// The fingerprint of the checked-in manifest named `name`: the file
/// under [`crate::manifests::manifest_dir`] when readable, else the
/// in-code definition (the golden test pins the two together, so either
/// source gives the same answer from a clean checkout). `None` for
/// searches over manifests this repo doesn't check in.
fn checked_in_fingerprint(name: &str) -> Option<String> {
    exper::manifest::ScenarioManifest::load(&crate::manifests::manifest_dir(), name)
        .ok()
        .or_else(|| crate::manifests::checked_in_manifest(name))
        .map(|m| m.fingerprint())
}

/// Digest of the shard fragments parked under `<dir>/shards/` (a sharded
/// sweep whose merge has not run yet, or whose driver died mid-flight):
/// one row per (grid, shard count) with landed/total coverage, plus an
/// explicit one-line warning for every fragment the merge would refuse —
/// wrong protocol version, or a fingerprint that no longer matches the
/// registry grid. Silence here would read as "nothing pending" exactly
/// when a stale fragment is waiting to poison a merge.
fn shards_markdown(dir: &Path) -> String {
    let shard_dir = sweep::fragment::shards_dir(dir);
    let mut names: Vec<String> = std::fs::read_dir(&shard_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    if names.is_empty() {
        return String::new();
    }
    names.sort();

    let mut out = String::from("\n### Pending shard fragments (shards/)\n\n");
    let mut warnings: Vec<String> = Vec::new();
    // (grid, shard_of) -> (landed shards, cells)
    let mut coverage: Vec<((String, usize), (usize, usize))> = Vec::new();
    for name in &names {
        let Some(frag) = sweep::fragment::load_fragment(&shard_dir.join(name)) else {
            warnings.push(format!("`{name}`: unreadable or not a shard fragment"));
            continue;
        };
        if frag.schema_version != sweep::plan::SWEEP_SCHEMA_VERSION {
            warnings.push(format!(
                "`{name}`: schema version {} != current {} — a merge will refuse it",
                frag.schema_version,
                sweep::plan::SWEEP_SCHEMA_VERSION
            ));
        }
        if let Some(grid) = crate::sweep_grids::build_sweep_grid(&frag.grid_name) {
            if frag.grid_fingerprint != grid.grid_fingerprint() {
                warnings.push(format!(
                    "`{name}`: fingerprint {} does not match the current {} grid \
                     (stale fragment? different FAST mode?) — a merge will refuse it",
                    frag.grid_fingerprint, frag.grid_name
                ));
            }
        }
        let key = (frag.grid_name.clone(), frag.shard_of);
        match coverage.iter_mut().find(|(k, _)| *k == key) {
            Some((_, (landed, cells))) => {
                *landed += 1;
                *cells += frag.cells.len();
            }
            None => coverage.push((key, (1, frag.cells.len()))),
        }
    }
    out.push_str("| grid | shards landed | cells |\n|---|---:|---:|\n");
    for ((grid, shard_of), (landed, cells)) in &coverage {
        out.push_str(&format!("| {grid} | {landed}/{shard_of} | {cells} |\n"));
    }
    for w in &warnings {
        out.push_str(&format!("\n⚠ {w}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bench_summary_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn empty_dir_notes_absence() {
        let dir = temp_dir("empty");
        let md = results_markdown(&dir);
        assert!(md.contains("no BENCH_*.json"));
    }

    #[test]
    fn metro_table_renders() {
        let dir = temp_dir("metro");
        std::fs::write(
            dir.join("BENCH_metro.json"),
            r#"{"name":"fig13_metro","requests_per_sec":250000.0,
                "throughput_ratio":1.4,"peak_mem_ratio":1.02,
                "scales":[{"scale":1,"requests":5000,"requests_per_sec":200000.0,
                           "peak_mem_bytes":209715.2},
                          {"scale":100,"requests":500000,"requests_per_sec":250000.0,
                           "peak_mem_bytes":214958.0}]}"#,
        )
        .unwrap();
        let md = results_markdown(&dir);
        assert!(md.contains("| 1x | 5000 | 200000 | 0.2 |"), "{md}");
        assert!(md.contains("| 100x | 500000 | 250000 | 0.2 |"), "{md}");
        assert!(md.contains("throughput 1.40x, peak heap 1.02x"), "{md}");
    }

    #[test]
    fn shard_fragments_fold_with_warnings() {
        let dir = temp_dir("shards");
        let cell = mano::report::BenchCell {
            scenario: "s".into(),
            policy: "p".into(),
            x: 1.0,
            seed: 7,
            summary: mano::metrics::RunSummary {
                slots: 10,
                total_arrivals: 100,
                total_accepted: 90,
                total_rejected: 10,
                acceptance_ratio: 0.9,
                sla_violation_ratio: 0.05,
                mean_admission_latency_ms: 25.0,
                p50_admission_latency_ms: 20.0,
                p95_admission_latency_ms: 60.0,
                total_cost_usd: 5.0,
                mean_slot_cost_usd: 0.5,
                mean_utilization: 0.4,
                mean_active_flows: 30.0,
                mean_live_instances: 12.0,
                mean_decision_time_us: 0.0,
                flows_disrupted: 3,
                replacement_success_rate: 2.0 / 3.0,
                downtime_slots: 7,
            },
        };
        // An unregistered grid name keeps the digest off the registry
        // fingerprint path (which depends on the FAST environment).
        let ok = sweep::fragment::fragment("offgrid", "fp", 0, 3, vec![(0, cell.clone())]);
        ok.write_to(&dir).unwrap();
        let mut stale = sweep::fragment::fragment("offgrid", "fp", 1, 3, vec![(1, cell)]);
        stale.schema_version = 99;
        stale.write_to(&dir).unwrap();
        std::fs::write(sweep::fragment::shards_dir(&dir).join("junk.json"), "{oops").unwrap();
        let md = results_markdown(&dir);
        assert!(md.contains("| offgrid | 2/3 | 2 |"), "{md}");
        assert!(
            md.contains("schema version 99") && md.contains("merge will refuse"),
            "{md}"
        );
        assert!(md.contains("`junk.json`: unreadable"), "{md}");
    }

    #[test]
    fn no_shards_dir_adds_nothing() {
        let dir = temp_dir("noshards");
        assert!(!results_markdown(&dir).contains("shard"));
    }

    fn search_report(name: &str, fingerprint: &str) -> mano::report::SearchReport {
        mano::report::SearchReport {
            name: name.into(),
            manifest_fingerprint: fingerprint.into(),
            fast: true,
            screen_seeds: 1,
            full_seeds: 2,
            promote_fraction: 0.5,
            runs_evaluated: 9,
            runs_exhaustive: 12,
            health_weights: vec![("acceptance_ratio".into(), 3.0, true)],
            candidates: vec![mano::report::SearchCandidate {
                point: 0,
                scenario: "lambda=2".into(),
                policy: "first-fit".into(),
                x: 2.0,
                alpha: 1.0,
                beta: 1.0,
                screened_health: 0.7,
                promoted: true,
                seeds_run: 2,
                health: 0.8125,
            }],
            best: 0,
            points: Vec::new(),
        }
    }

    #[test]
    fn search_digest_renders_and_flags_fingerprint_drift() {
        let dir = temp_dir("search");
        // A search whose recorded fingerprint drifted from the checked-in
        // smoke manifest, and one over a manifest this repo doesn't know.
        search_report("smoke", "smoke-0000000000000000")
            .write_canonical_to(&dir)
            .unwrap();
        search_report("offbook", "offbook-1111111111111111")
            .write_canonical_to(&dir)
            .unwrap();
        let md = results_markdown(&dir);
        assert!(
            md.contains("| smoke | **first-fit** | lambda=2 | 1 | 1 | 0.8125 | 9/12 |"),
            "{md}"
        );
        assert!(md.contains("| offbook |"), "{md}");
        assert!(
            md.contains("⚠ `BENCH_search_smoke.json`: manifest fingerprint"),
            "{md}"
        );
        assert!(
            !md.contains("`BENCH_search_offbook.json`: manifest"),
            "unknown manifests have nothing to drift from: {md}"
        );
        // Search reports must not leak into the grid headline table.
        assert!(!md.contains("| BENCH_search_smoke.json |"), "{md}");
    }

    #[test]
    fn search_digest_is_quiet_when_fingerprints_agree() {
        let dir = temp_dir("search_ok");
        let fp = crate::manifests::smoke_manifest().fingerprint();
        search_report("smoke", &fp)
            .write_canonical_to(&dir)
            .unwrap();
        let md = results_markdown(&dir);
        assert!(md.contains("| smoke | **first-fit** |"), "{md}");
        assert!(!md.contains('⚠'), "{md}");
    }

    #[test]
    fn grid_and_hotpath_tables_render() {
        let dir = temp_dir("full");
        std::fs::write(
            dir.join("BENCH_alpha.json"),
            r#"{"name":"alpha","threads":4,"wall_clock_secs":1.5,"slots_simulated":600,
                "throughput_slots_per_sec":400.0,"cells":[{"a":1},{"a":2}],"aggregates":[]}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_hotpath.json"),
            r#"{"name":"hotpath",
                "optimized":{"decisions_per_sec":50000.0,"batched_decisions_per_sec":90000.0,
                             "train_steps_per_sec":800.0},
                "speedup":{"decisions":2.3,"batched_decisions":1.8,"train_steps":2.4}}"#,
        )
        .unwrap();
        std::fs::write(dir.join("BENCH_broken.json"), "{oops").unwrap();
        let md = results_markdown(&dir);
        assert!(
            md.contains("| BENCH_alpha.json | 2 | 4 | 1.50 | 400 |"),
            "{md}"
        );
        assert!(
            md.contains("| decisions (per-decision) | 50000 | 2.30x |"),
            "{md}"
        );
        assert!(
            md.contains("| decisions (batched) | 90000 | 1.80x |"),
            "{md}"
        );
        assert!(md.contains("| train steps | 800.0 | 2.40x |"), "{md}");
        assert!(
            md.contains("skipped unparseable: BENCH_broken.json"),
            "{md}"
        );
    }
}
