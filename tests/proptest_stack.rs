//! Cross-crate property tests: engine invariants under random scenarios
//! and policies.

use drl_vnf_edge::prelude::*;
use proptest::prelude::*;

fn scenario_from(rate: f64, sites: usize, seed: u64) -> Scenario {
    let mut s = Scenario::small_test()
        .with_arrival_rate(rate)
        .with_seed(seed);
    s.topology = TopologySpec::Metro { sites };
    s.horizon_slots = 30;
    s
}

fn policy_by_index(i: usize) -> Box<dyn PlacementPolicy> {
    match i % 5 {
        0 => Box::new(RandomPolicy),
        1 => Box::new(FirstFitPolicy),
        2 => Box::new(GreedyLatencyPolicy),
        3 => Box::new(GreedyCostPolicy),
        _ => Box::new(WeightedGreedyPolicy::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_policy_any_scenario_invariants_hold(
        rate in 0.5f64..8.0,
        sites in 2usize..6,
        seed in 0u64..5_000,
        policy_index in 0usize..5,
    ) {
        let scenario = scenario_from(rate, sites, seed);
        let mut policy = policy_by_index(policy_index);
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let summary = sim.run(policy.as_mut(), seed);

        prop_assert_eq!(summary.total_arrivals, summary.total_accepted + summary.total_rejected);
        prop_assert!((0.0..=1.0).contains(&summary.acceptance_ratio));
        prop_assert!((0.0..=1.0).contains(&summary.sla_violation_ratio));
        prop_assert!(summary.total_cost_usd.is_finite() && summary.total_cost_usd >= 0.0);
        prop_assert!(summary.mean_admission_latency_ms >= 0.0);

        // Per-slot sanity.
        for r in sim.metrics().slots() {
            prop_assert_eq!(r.arrivals, r.accepted + r.rejected);
            prop_assert!(r.mean_utilization <= 1.0 + 1e-9);
            prop_assert!(r.total_cost() >= 0.0);
        }
    }

    #[test]
    fn drain_always_returns_capacity(
        rate in 1.0f64..6.0,
        seed in 0u64..2_000,
        policy_index in 0usize..5,
    ) {
        let scenario = scenario_from(rate, 3, seed);
        let mut policy = policy_by_index(policy_index);
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let _ = sim.run(policy.as_mut(), 0);
        // `run` leaves the simulation in event mode; drain there too.
        let drain = Trace { requests: Vec::new(), horizon_slots: 300 };
        let _ = sim.run_trace(&drain, policy.as_mut(), 0);
        prop_assert_eq!(sim.active_flow_count(), 0);
        prop_assert_eq!(sim.pool.len(), 0);
        prop_assert!(sim.ledger().total_used_cpu().abs() < 1e-6);
    }

    #[test]
    fn utilization_monotone_in_load_for_fixed_policy(seed in 0u64..1_000) {
        // More offered load ⇒ at least as much mean utilization (weak
        // monotonicity with slack for stochastic variation).
        let lo = scenario_from(1.0, 4, seed);
        let hi = scenario_from(6.0, 4, seed);
        let run = |s: &Scenario| {
            let mut p = FirstFitPolicy;
            evaluate_policy(s, RewardConfig::default(), &mut p, 5).summary.mean_utilization
        };
        prop_assert!(run(&hi) + 0.02 >= run(&lo));
    }
}
