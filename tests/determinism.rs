//! Determinism regression tests: the whole stack — trace synthesis,
//! placement, flow lifecycle, cost accounting — must be a pure function
//! of (scenario, seed). Any hidden global state, HashMap iteration-order
//! dependence, or wall-clock leakage into metrics fails here.

use drl_vnf_edge::prelude::*;

/// Evaluate `policy` on `scenario` and return the summary with the single
/// wall-clock-derived field zeroed (decision timing is measured in
/// nanoseconds of real time and is legitimately non-deterministic).
fn summary_for(scenario: &Scenario, mut policy: Box<dyn PlacementPolicy>, seed: u64) -> RunSummary {
    let mut result = evaluate_policy(scenario, RewardConfig::default(), policy.as_mut(), seed);
    result.summary.mean_decision_time_us = 0.0;
    result.summary
}

#[test]
fn same_scenario_same_seed_is_bit_identical() {
    let scenario = Scenario::small_test();
    let policies: [fn() -> Box<dyn PlacementPolicy>; 3] = [
        || Box::new(FirstFitPolicy),
        || Box::new(GreedyLatencyPolicy),
        || Box::new(WeightedGreedyPolicy::default()),
    ];
    for make in policies {
        let a = summary_for(&scenario, make(), 42);
        let b = summary_for(&scenario, make(), 42);
        assert_eq!(a, b, "summaries must be bit-identical for a fixed seed");
    }
}

#[test]
fn same_seed_slot_records_are_bit_identical() {
    // Stronger than the summary check: every per-slot record (arrivals,
    // acceptance, latency, each cost component, utilization) must match
    // exactly, not just the aggregates.
    let scenario = Scenario::small_test();
    let run = || {
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = GreedyCostPolicy;
        let _ = sim.run(&mut policy, 7);
        sim.metrics().slots().to_vec()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra, rb, "slot {} diverged between identical runs", ra.slot);
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    // Sanity check that the seed actually feeds the workload: two seeds
    // should (overwhelmingly) not produce identical arrival sequences.
    let scenario = Scenario::small_test();
    let arrivals = |seed: u64| {
        let mut policy = FirstFitPolicy;
        evaluate_policy(&scenario, RewardConfig::default(), &mut policy, seed)
            .summary
            .total_arrivals
    };
    let distinct: std::collections::HashSet<u64> = (0..8).map(arrivals).collect();
    assert!(
        distinct.len() > 1,
        "eight different seeds all produced identical arrival counts"
    );
}
