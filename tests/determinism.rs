//! Determinism regression tests: the whole stack — trace synthesis,
//! placement, flow lifecycle, cost accounting — must be a pure function
//! of (scenario, seed). Any hidden global state, HashMap iteration-order
//! dependence, or wall-clock leakage into metrics fails here.
//!
//! Since the event-queue refactor, `Simulation::run` drives everything
//! through the discrete-event engine in slot-compatibility mode, so every
//! test below exercises the event path; the cross-engine and sparse-mode
//! tests pin it against the slotted oracle and against itself explicitly.

use drl_vnf_edge::prelude::*;

/// Evaluate `policy` on `scenario` and return the summary with the single
/// wall-clock-derived field zeroed (decision timing is measured in
/// nanoseconds of real time and is legitimately non-deterministic).
fn summary_for(scenario: &Scenario, mut policy: Box<dyn PlacementPolicy>, seed: u64) -> RunSummary {
    let mut result = evaluate_policy(scenario, RewardConfig::default(), policy.as_mut(), seed);
    result.summary.mean_decision_time_us = 0.0;
    result.summary
}

#[test]
fn same_scenario_same_seed_is_bit_identical() {
    let scenario = Scenario::small_test();
    let policies: [fn() -> Box<dyn PlacementPolicy>; 3] = [
        || Box::new(FirstFitPolicy),
        || Box::new(GreedyLatencyPolicy),
        || Box::new(WeightedGreedyPolicy::default()),
    ];
    for make in policies {
        let a = summary_for(&scenario, make(), 42);
        let b = summary_for(&scenario, make(), 42);
        assert_eq!(a, b, "summaries must be bit-identical for a fixed seed");
    }
}

#[test]
fn same_seed_slot_records_are_bit_identical() {
    // Stronger than the summary check: every per-slot record (arrivals,
    // acceptance, latency, each cost component, utilization) must match
    // exactly, not just the aggregates.
    let scenario = Scenario::small_test();
    let run = || {
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = GreedyCostPolicy;
        let _ = sim.run(&mut policy, 7);
        sim.metrics().slots().to_vec()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra, rb, "slot {} diverged between identical runs", ra.slot);
    }
}

/// A small scenario with a seeded stochastic failure/repair process that
/// actually fires within the horizon.
fn event_scenario() -> Scenario {
    Scenario::small_test().with_failures(0.02, 8.0)
}

#[test]
fn event_scenario_same_seed_is_bit_identical() {
    // Failures, evictions and re-placement episodes must all be pure
    // functions of (scenario, seed), exactly like the static stack.
    let scenario = event_scenario();
    let policies: [fn() -> Box<dyn PlacementPolicy>; 3] = [
        || Box::new(FirstFitPolicy),
        || Box::new(GreedyLatencyPolicy),
        || Box::new(WeightedGreedyPolicy::default()),
    ];
    for make in policies {
        let a = summary_for(&scenario, make(), 42);
        let b = summary_for(&scenario, make(), 42);
        assert_eq!(a, b, "event-bearing summaries must be bit-identical");
        assert!(a.downtime_slots > 0, "the failure process must fire");
    }
}

#[test]
fn event_scenario_engine_output_is_thread_invariant() {
    // Same seed + event schedule through the exper engine: 8 worker
    // threads must produce the byte-identical deterministic payload as a
    // single-threaded run.
    let grid = |threads: usize| {
        ExperimentGrid::new("event_determinism")
            .scenario("fail=0.02", 0.02, event_scenario())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .policy("weighted-greedy", || {
                Box::new(WeightedGreedyPolicy::default())
            })
            .seeds(&[1, 2, 3, 4])
            .threads(threads)
            .run()
    };
    let (par, seq) = (grid(8), grid(1));
    assert_eq!(
        serde_json::to_string_pretty(&par.payload_json()),
        serde_json::to_string_pretty(&seq.payload_json()),
        "deterministic payload must not depend on thread count"
    );
    // The event schedule is a function of the scenario seed, not the
    // workload seed: every cell of the group saw the same failures.
    for cell in &par.cells {
        assert_eq!(
            cell.summary.downtime_slots, par.cells[0].summary.downtime_slots,
            "same scenario ⇒ same realized failure timeline"
        );
    }
}

#[test]
fn event_engine_matches_the_slotted_oracle() {
    // Root-level pin of the tentpole contract (the full per-scenario
    // matrix lives in crates/core/tests/event_slot_equivalence.rs): on a
    // slot-boundary schedule the event engine is bit-identical to the
    // paper's slotted loop, failures and re-placements included.
    let scenario = event_scenario();
    let run = |slotted: bool| {
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = WeightedGreedyPolicy::default();
        let mut summary = if slotted {
            sim.run_slotted(&mut policy, 42)
        } else {
            sim.run(&mut policy, 42)
        };
        summary.mean_decision_time_us = 0.0;
        (summary, sim.metrics().slots().to_vec())
    };
    let (slot_summary, slot_records) = run(true);
    let (event_summary, event_records) = run(false);
    assert_eq!(slot_summary, event_summary, "engines diverged");
    assert_eq!(slot_records, event_records, "slot-record streams diverged");
    assert!(
        slot_summary.downtime_slots > 0,
        "the failure process must fire"
    );
}

#[test]
fn sparse_engine_same_schedule_is_bit_identical() {
    // The sparse entry point (`run_events`, mid-slot arrivals, sub-slot
    // holding times) must be exactly as reproducible as the slotted path.
    let scenario = Scenario::small_test();
    let run = || {
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let slot_ms = sim.slot_ms();
        let arrivals: Vec<TimedArrival> = (0..24u64)
            .map(|i| TimedArrival {
                at: SimTime::from_ms(i * slot_ms / 3 + (i * 131) % slot_ms),
                request: Request::new(
                    RequestId(i),
                    ChainId((i % 4) as usize),
                    NodeId((i % 4) as usize),
                    0, // rewritten from `at` by run_events
                    1 + (i % 4) as u32,
                )
                .with_duration_ms(slot_ms / 2 + i * 200),
            })
            .collect();
        let mut policy = WeightedGreedyPolicy::default();
        let mut summary = sim.run_events(&arrivals, &mut policy, 9, 30);
        summary.mean_decision_time_us = 0.0;
        assert!(sim.events_processed() > 0, "the queue must drive the run");
        (summary, sim.metrics().slots().to_vec())
    };
    let (a_summary, a_records) = run();
    let (b_summary, b_records) = run();
    assert_eq!(a_summary, b_summary);
    assert_eq!(a_records, b_records);
}

#[test]
fn different_seeds_produce_different_traces() {
    // Sanity check that the seed actually feeds the workload: two seeds
    // should (overwhelmingly) not produce identical arrival sequences.
    let scenario = Scenario::small_test();
    let arrivals = |seed: u64| {
        let mut policy = FirstFitPolicy;
        evaluate_policy(&scenario, RewardConfig::default(), &mut policy, seed)
            .summary
            .total_arrivals
    };
    let distinct: std::collections::HashSet<u64> = (0..8).map(arrivals).collect();
    assert!(
        distinct.len() > 1,
        "eight different seeds all produced identical arrival counts"
    );
}
