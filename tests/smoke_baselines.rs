//! End-to-end smoke tests: `Scenario::small_test()` must run to
//! completion under the canonical baseline policies and produce
//! non-degenerate metrics.

use drl_vnf_edge::prelude::*;

fn smoke(policy: &mut dyn PlacementPolicy, name: &str) -> RunSummary {
    let scenario = Scenario::small_test();
    let result = evaluate_policy(&scenario, RewardConfig::default(), policy, 13);
    let s = result.summary;
    assert!(s.total_arrivals > 0, "{name}: no arrivals generated");
    assert!(
        (0.0..=1.0).contains(&s.acceptance_ratio),
        "{name}: acceptance ratio {} outside [0,1]",
        s.acceptance_ratio
    );
    assert_eq!(
        s.total_arrivals,
        s.total_accepted + s.total_rejected,
        "{name}: arrival accounting"
    );
    assert!(
        s.total_cost_usd.is_finite() && s.total_cost_usd >= 0.0,
        "{name}: cost {} degenerate",
        s.total_cost_usd
    );
    assert_eq!(s.slots, scenario.horizon_slots, "{name}: truncated run");
    s
}

#[test]
fn first_fit_smoke() {
    let s = smoke(&mut FirstFitPolicy, "first-fit");
    assert!(s.total_accepted > 0, "first-fit should admit something");
}

#[test]
fn greedy_latency_smoke() {
    let s = smoke(&mut GreedyLatencyPolicy, "greedy-latency");
    assert!(
        s.total_accepted > 0,
        "greedy-latency should admit something"
    );
    assert!(
        s.mean_admission_latency_ms > 0.0,
        "admitted requests must have positive latency"
    );
}

#[test]
fn cloud_only_smoke() {
    // small_test ships a cloud node, so cloud-only must still admit.
    let s = smoke(&mut CloudOnlyPolicy, "cloud-only");
    assert!(
        s.total_accepted > 0,
        "cloud-only should admit via the cloud"
    );
}
