//! Integration tests spanning the whole stack:
//! workload → mano engine → sfc/edgenet substrates, plus cross-crate
//! invariants no single crate can check alone.

use drl_vnf_edge::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_scenario(rate: f64) -> Scenario {
    let mut s = Scenario::small_test().with_arrival_rate(rate);
    s.horizon_slots = 80;
    s
}

#[test]
fn full_pipeline_workload_to_summary() {
    let scenario = small_scenario(3.0);
    let mut policy = FirstFitPolicy;
    let result = evaluate_policy(&scenario, RewardConfig::default(), &mut policy, 5);
    let s = &result.summary;
    assert_eq!(s.slots, scenario.horizon_slots);
    assert_eq!(s.total_arrivals, s.total_accepted + s.total_rejected);
    assert!(
        s.total_arrivals > 50,
        "Poisson(3) over 80 slots should produce plenty of requests"
    );
    assert!(s.mean_admission_latency_ms > 0.0);
    assert!(s.total_cost_usd > 0.0);
}

#[test]
fn capacity_is_conserved_through_a_full_run() {
    // After every flow departs and idle instances are retired, the ledger
    // must return to zero — the engine leaks no capacity.
    let mut scenario = small_scenario(4.0);
    scenario.horizon_slots = 60;
    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = WeightedGreedyPolicy::default();
    let _ = sim.run(&mut policy, 1);
    // Drain: no arrivals for long enough that all flows depart and every
    // instance passes the idle grace period. `run` left the simulation in
    // event mode, so the drain rides the event engine too (departure and
    // retire-check events scheduled past the first horizon fire here).
    let drain = Trace {
        requests: Vec::new(),
        horizon_slots: 400,
    };
    let _ = sim.run_trace(&drain, &mut policy, 1);
    assert_eq!(sim.active_flow_count(), 0);
    assert_eq!(sim.pool.len(), 0, "all instances retired after drain");
    assert_eq!(sim.ledger().total_used_cpu(), 0.0, "no leaked capacity");
}

#[test]
fn all_baselines_complete_and_respect_bounds() {
    let scenario = small_scenario(5.0);
    let mut policies = standard_baselines();
    let results = compare_policies(&scenario, RewardConfig::default(), &mut policies, 11);
    assert_eq!(results.len(), policies.len());
    for r in &results {
        let s = &r.summary;
        assert!(
            (0.0..=1.0).contains(&s.acceptance_ratio),
            "{}: acceptance",
            r.policy
        );
        assert!(
            (0.0..=1.0).contains(&s.sla_violation_ratio),
            "{}: sla",
            r.policy
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&s.mean_utilization),
            "{}: util",
            r.policy
        );
        assert!(
            s.total_cost_usd.is_finite() && s.total_cost_usd >= 0.0,
            "{}: cost",
            r.policy
        );
    }
}

#[test]
fn drl_end_to_end_training_improves_over_random() {
    // The headline claim in miniature: a briefly-trained DRL manager beats
    // the random policy on the combined objective.
    let mut scenario = small_scenario(4.0);
    scenario.horizon_slots = 60;
    let reward = RewardConfig::default();
    let config = DrlManagerConfig {
        dqn: rl::dqn::DqnConfig {
            network: rl::qnet::QNetworkConfig::Standard { hidden: vec![64] },
            replay_capacity: 10_000,
            batch_size: 32,
            learn_start: 200,
            target_sync_every: 200,
            optimizer: nn::prelude::OptimizerConfig::adam(1e-3),
            epsilon: rl::schedule::EpsilonSchedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: 3_000,
            },
            ..rl::dqn::DqnConfig::default()
        },
        label: "drl".into(),
    };
    let mut trained = train_drl(&scenario, reward, config, 4);
    let drl = evaluate_policy(&scenario, reward, &mut trained.policy, 77);
    let mut random = RandomPolicy;
    let rand_result = evaluate_policy(&scenario, reward, &mut random, 77);
    let drl_obj = drl.summary.combined_objective(1.0, 1.0);
    let rand_obj = rand_result.summary.combined_objective(1.0, 1.0);
    assert!(
        drl_obj < rand_obj,
        "trained DRL ({drl_obj:.2}) must beat random ({rand_obj:.2})"
    );
}

#[test]
fn same_seed_reproduces_identical_runs_across_policies() {
    let scenario = small_scenario(3.0);
    let run = || {
        let mut p = GreedyCostPolicy;
        let mut r = evaluate_policy(&scenario, RewardConfig::default(), &mut p, 42);
        r.summary.mean_decision_time_us = 0.0; // wall-clock jitter
        r.summary
    };
    assert_eq!(run(), run());
}

#[test]
fn overload_forces_rejections_but_never_panics() {
    // Crush a tiny topology: huge rate, tiny capacity.
    let mut scenario = small_scenario(30.0);
    scenario.topology_builder.edge_capacity = Resources::new(6.0, 12.0);
    scenario.topology_builder.with_cloud = false; // no infinite escape hatch
    scenario.horizon_slots = 40;
    let mut policy = FirstFitPolicy;
    let result = evaluate_policy(&scenario, RewardConfig::default(), &mut policy, 9);
    assert!(result.summary.total_rejected > 0, "overload must reject");
    assert!(result.summary.acceptance_ratio < 1.0);
}

#[test]
fn cloud_only_policy_survives_without_cloud() {
    let mut scenario = small_scenario(2.0);
    scenario.topology_builder.with_cloud = false;
    let mut policy = CloudOnlyPolicy;
    let result = evaluate_policy(&scenario, RewardConfig::default(), &mut policy, 1);
    // No cloud in the topology → cloud-only rejects everything.
    assert_eq!(result.summary.total_accepted, 0);
}

#[test]
fn trace_generation_feeds_engine_consistently() {
    // Arrivals counted by the engine must match the trace.
    let scenario = small_scenario(4.0);
    let sim = Simulation::new(&scenario, RewardConfig::default());
    let sites = sim.topology().edge_nodes();
    let mut rng = StdRng::seed_from_u64(123);
    let trace = generate_trace(&scenario.workload, &sites, scenario.horizon_slots, &mut rng);
    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let summary = sim.run_trace(&trace, &mut policy, 0);
    assert_eq!(summary.total_arrivals as usize, trace.len());
}

#[test]
fn sla_violations_only_on_accepted_requests() {
    let scenario = small_scenario(6.0);
    let mut policy = RandomPolicy;
    let result = evaluate_policy(&scenario, RewardConfig::default(), &mut policy, 3);
    let s = &result.summary;
    // violation ratio is defined over accepted requests; consistency check.
    assert!(s.sla_violation_ratio <= 1.0);
    if s.total_accepted == 0 {
        assert_eq!(s.sla_violation_ratio, 0.0);
    }
}
