//! Policy shoot-out: every baseline head-to-head on one shared workload
//! trace at a chosen load level.
//!
//! ```sh
//! cargo run --release --example compare_policies            # λ = 6
//! RATE=10 cargo run --release --example compare_policies    # overload
//! ```

use drl_vnf_edge::prelude::*;

fn main() {
    let rate: f64 = std::env::var("RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6.0);
    let mut scenario = Scenario::default_metro().with_arrival_rate(rate);
    scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    scenario.horizon_slots = 240;

    println!("arrival rate: {rate} requests/slot over 8 metro sites + cloud\n");
    let reward = RewardConfig::default();
    let mut policies = standard_baselines();
    let mut results = compare_policies(&scenario, reward, &mut policies, 2718);
    results.sort_by(|a, b| {
        a.summary
            .combined_objective(1.0, 1.0)
            .partial_cmp(&b.summary.combined_objective(1.0, 1.0))
            .unwrap()
    });
    println!("{}", markdown_comparison(&results));
    println!("(sorted by combined objective; train a DRL manager with the quickstart example)");
}
