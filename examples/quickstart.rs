//! Quickstart: build a geo-distributed edge topology, train a small DRL
//! VNF manager, and compare it against two heuristics — in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use drl_vnf_edge::prelude::*;

fn main() {
    // 1. Describe the world: 4 metro edge sites + a remote cloud,
    //    Poisson arrivals over the 4 standard service chains.
    let mut scenario = Scenario::default_metro().with_arrival_rate(4.0);
    scenario.topology = TopologySpec::Metro { sites: 4 };
    scenario.horizon_slots = 120; // 10 simulated minutes at 5 s/slot

    // 2. Train the DRL manager for a couple of passes over the horizon.
    let reward = RewardConfig::default();
    let drl_config = DrlManagerConfig::default();
    println!("training DRL manager…");
    let mut trained = train_drl(&scenario, reward, drl_config, 3);
    println!(
        "  {} placement episodes, {} gradient steps",
        trained.episode_returns.len(),
        trained.policy.agent().learn_steps()
    );
    let smoothed = moving_average(&trained.episode_returns, 100);
    println!(
        "  smoothed episode return: {:.3} -> {:.3}",
        smoothed.first().copied().unwrap_or(0.0),
        smoothed.last().copied().unwrap_or(0.0)
    );

    // 3. Evaluate everyone on the same unseen workload trace.
    let mut results = vec![evaluate_policy(&scenario, reward, &mut trained.policy, 900)];
    let mut first_fit = FirstFitPolicy;
    results.push(evaluate_policy(&scenario, reward, &mut first_fit, 900));
    let mut greedy = GreedyLatencyPolicy;
    results.push(evaluate_policy(&scenario, reward, &mut greedy, 900));

    println!("\n{}", markdown_comparison(&results));
    println!("full experiment suite: see crates/bench and EXPERIMENTS.md");
}
