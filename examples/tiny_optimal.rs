//! Optimality microscope: on a tiny instance (3 sites + cloud, short
//! chains) compare heuristics against the exhaustive lookahead comparator
//! and print the per-policy gap.
//!
//! ```sh
//! cargo run --release --example tiny_optimal
//! ```

use drl_vnf_edge::prelude::*;

fn main() {
    let mut scenario = Scenario::default_metro().with_arrival_rate(2.5);
    scenario.topology = TopologySpec::Metro { sites: 3 };
    scenario.horizon_slots = 120;
    // Short chains only so the exhaustive enumeration stays tiny
    // (4 nodes ^ 3 VNFs = 64 sequences at most).
    scenario.workload.chain_mix = vec![1.0, 1.0, 0.0, 0.0];

    let reward = RewardConfig::default();
    let probe = Simulation::new(&scenario, reward);
    let mut exhaustive = ExhaustivePolicy::new(
        probe.topology().clone(),
        probe.routes().clone(),
        probe.vnfs.clone(),
        scenario.prices,
        scenario.workload.mean_duration_slots * scenario.slot_seconds,
    );
    drop(probe);

    let mut results = vec![evaluate_policy(&scenario, reward, &mut exhaustive, 64)];
    for mut p in standard_baselines() {
        results.push(evaluate_policy(&scenario, reward, p.as_mut(), 64));
    }

    let reference = results[0].summary.combined_objective(1.0, 1.0);
    println!("{}", markdown_comparison(&results));
    println!("| policy | combined objective | gap vs exhaustive |");
    println!("|---|---|---|");
    for r in &results {
        let obj = r.summary.combined_objective(1.0, 1.0);
        println!(
            "| {} | {:.2} | {:+.1}% |",
            r.policy,
            obj,
            100.0 * (obj - reference) / reference
        );
    }
}
