//! Metro placement anatomy: place a single video-streaming chain across
//! real metro sites step by step, printing each decision's candidates —
//! a microscope on the MDP the DRL agent learns over.
//!
//! ```sh
//! cargo run --release --example metro_placement
//! ```

use drl_vnf_edge::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A policy that narrates every decision context before delegating to
/// greedy-latency.
struct NarratingPolicy {
    inner: GreedyLatencyPolicy,
    sim_names: Vec<String>,
}

impl PlacementPolicy for NarratingPolicy {
    fn name(&self) -> String {
        "narrating-greedy".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, rng: &mut StdRng) -> PlacementAction {
        println!(
            "\nVNF #{} of chain '{}' (traffic currently at {}):",
            ctx.position + 1,
            ctx.chain.name,
            self.sim_names[ctx.at_node.0]
        );
        println!("  node            | feasible | reuse | marginal lat | marginal cost | util");
        for c in &ctx.candidates {
            println!(
                "  {:<15} | {:>8} | {:>5} | {:>9.2} ms | ${:>11.5} | {:>4.0}%",
                self.sim_names[c.node.0],
                c.feasible,
                c.reuse_available,
                c.marginal_latency_ms,
                c.marginal_cost_usd,
                100.0 * c.utilization
            );
        }
        let action = self.inner.decide(ctx, rng);
        if let PlacementAction::Place(node) = action {
            println!("  -> placed on {}", self.sim_names[node.0]);
        }
        action
    }
}

fn main() {
    let mut scenario = Scenario::default_metro();
    scenario.topology = TopologySpec::Metro { sites: 5 };
    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let names: Vec<String> = sim
        .topology()
        .nodes()
        .iter()
        .map(|n| n.name.clone())
        .collect();
    println!("topology: {} (+ cloud)", names[..5].join(", "));

    let mut policy = NarratingPolicy {
        inner: GreedyLatencyPolicy,
        sim_names: names,
    };
    let mut rng = StdRng::seed_from_u64(3);

    // A video-streaming request (nat → firewall → transcoder → proxy)
    // arriving at Seattle (node 4).
    let request = Request::new(RequestId(0), ChainId(2), edgenet::node::NodeId(4), 0, 12);
    match sim.place_request(&request, &mut policy, &mut rng) {
        PlacementOutcome::Accepted {
            latency_ms,
            sla_violated,
        } => {
            println!(
                "\naccepted: end-to-end latency {latency_ms:.2} ms (SLA violated: {sla_violated})"
            );
        }
        PlacementOutcome::Rejected => println!("\nrejected"),
    }

    // A second identical request reuses the instances just created.
    println!("\n=== second identical request (watch the reuse column) ===");
    let request2 = Request::new(RequestId(1), ChainId(2), edgenet::node::NodeId(4), 0, 12);
    let _ = sim.place_request(&request2, &mut policy, &mut rng);
    println!("\nlive instances: {}", sim.pool.len());
}
