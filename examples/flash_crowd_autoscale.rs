//! Flash-crowd autoscaling: watch the VNF manager absorb a 4× traffic
//! spike — instances scale out during the spike and are retired after the
//! idle grace period once it passes.
//!
//! ```sh
//! cargo run --release --example flash_crowd_autoscale
//! ```

use drl_vnf_edge::prelude::*;

fn main() {
    let mut scenario = Scenario::default_metro();
    scenario.topology = TopologySpec::Metro { sites: 6 };
    scenario.horizon_slots = 240;
    scenario.workload.pattern = LoadPattern::FlashCrowd {
        base: 3.0,
        spike_rate: 12.0,
        spike_start: 80,
        spike_duration: 60,
    };

    let reward = RewardConfig::default();
    // The weighted-greedy heuristic reacts instantly to the spike — a good
    // lens on the engine's scale-out/scale-in behaviour without training.
    let mut policy = WeightedGreedyPolicy::default();
    let mut sim = Simulation::new(&scenario, reward);
    let _summary = sim.run(&mut policy, 0);

    println!("slot | load phase   | active flows | instances | util % | cost/slot");
    println!("-----|--------------|--------------|-----------|--------|----------");
    for r in sim.metrics().slots().iter().step_by(10) {
        let phase = if (80..140).contains(&r.slot) {
            "FLASH CROWD"
        } else {
            "baseline"
        };
        println!(
            "{:>4} | {:<12} | {:>12} | {:>9} | {:>5.1} | ${:.4}",
            r.slot,
            phase,
            r.active_flows,
            r.live_instances,
            100.0 * r.mean_utilization,
            r.total_cost()
        );
    }

    let spike: Vec<&SlotRecord> = sim
        .metrics()
        .slots()
        .iter()
        .filter(|r| (80..140).contains(&r.slot))
        .collect();
    let calm: Vec<&SlotRecord> = sim
        .metrics()
        .slots()
        .iter()
        .filter(|r| r.slot < 80)
        .collect();
    let mean_inst = |rs: &[&SlotRecord]| {
        rs.iter().map(|r| r.live_instances as f64).sum::<f64>() / rs.len().max(1) as f64
    };
    println!(
        "\nmean instances: {:.1} before spike -> {:.1} during spike (scale-out x{:.1})",
        mean_inst(&calm),
        mean_inst(&spike),
        mean_inst(&spike) / mean_inst(&calm).max(1e-9)
    );
}
